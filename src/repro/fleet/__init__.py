"""Fleet-scale desktop-grid simulation (``repro.fleet``).

Scales the paper's single-desktop calibration (Figures 1-8) up to a
whole volunteer project: a BOINC-style work-unit server (dispatch,
deadlines, retry/backoff, quorum-of-2 validation with erroneous-result
injection) driving thousands of churny volunteer hosts, each carrying a
per-hypervisor slowdown derived from the calibrated guest-performance
and host-intrusiveness results.

Layout:

* :mod:`~repro.fleet.calibration` — hypervisor aliases and the
  figures-to-fleet slowdown reduction;
* :mod:`~repro.fleet.config` — :class:`FleetConfig`, the validated
  value object every run is a pure function of;
* :mod:`~repro.fleet.churn` — per-host availability traces
  (on/off sessions, permanent departure);
* :mod:`~repro.fleet.host` — deterministic host sampling, sharded
  across :func:`repro.core.parallel.map_shards` workers;
* :mod:`~repro.fleet.columns` — the same hosts as flat columnar
  arrays (CSR session traces) for 100k+-host runs, with
  :class:`FleetHost` kept as a lazy view;
* :mod:`~repro.fleet.fastrng` / :mod:`~repro.fleet.cloop` — the
  vectorised PCG64 replica and the compiled event-loop kernel behind
  the columnar fast path;
* :mod:`~repro.fleet.validation` — the quorum validator;
* :mod:`~repro.fleet.recovery` — the failure & recovery layer
  (server outages, upload retry/loss, checkpoint rollback,
  degraded-mode policy);
* :mod:`~repro.fleet.server` — the discrete-event server loop and
  :class:`FleetReport`;
* :mod:`~repro.fleet.figures` — fleet-level figures registered in
  :data:`repro.core.figures.FIGURES`.

Entry points: :func:`repro.api.run_fleet` (cache + manifest + metrics)
and the ``repro fleet`` CLI subcommand.
"""

from repro.fleet.calibration import (
    HYPERVISOR_ALIASES,
    MIXED_FLEET,
    estimated_grid_efficiency,
    fleet_slowdown,
    fleet_slowdowns,
    memory_slowdown_factor,
    resolve_hypervisor,
)
from repro.fleet.churn import (
    ChurnModel,
    active_seconds,
    availability_trace,
    finish_time,
)
from repro.fleet.columns import (
    COLUMN_SHARD_SIZE,
    FleetColumns,
    build_fleet_columns,
    column_shards,
)
from repro.fleet.config import FleetConfig
from repro.fleet.host import (
    SHARD_SIZE,
    FleetHost,
    build_fleet_hosts,
    host_shards,
    sample_host,
)
from repro.fleet.recovery import (
    RecoveryPolicy,
    checkpoint_cost_s,
    outage_windows,
    rollback_seconds,
)
from repro.fleet.server import FleetReport, FleetServer, simulate_fleet
from repro.fleet.validation import (
    CANONICAL_KEY,
    QuorumValidator,
    erroneous_key,
)
from repro.fleet.figures import (
    fleet_checkpoint_figure,
    fleet_makespan_figure,
    fleet_outage_figure,
    fleet_scale_figure,
    fleet_waste_figure,
    report_figure,
)

__all__ = [
    "CANONICAL_KEY",
    "COLUMN_SHARD_SIZE",
    "ChurnModel",
    "FleetColumns",
    "FleetConfig",
    "FleetHost",
    "FleetReport",
    "FleetServer",
    "HYPERVISOR_ALIASES",
    "MIXED_FLEET",
    "QuorumValidator",
    "RecoveryPolicy",
    "SHARD_SIZE",
    "active_seconds",
    "availability_trace",
    "build_fleet_columns",
    "build_fleet_hosts",
    "column_shards",
    "checkpoint_cost_s",
    "erroneous_key",
    "estimated_grid_efficiency",
    "finish_time",
    "fleet_checkpoint_figure",
    "fleet_makespan_figure",
    "fleet_outage_figure",
    "fleet_scale_figure",
    "fleet_slowdown",
    "fleet_slowdowns",
    "fleet_waste_figure",
    "host_shards",
    "memory_slowdown_factor",
    "outage_windows",
    "report_figure",
    "resolve_hypervisor",
    "rollback_seconds",
    "sample_host",
    "simulate_fleet",
]
