"""Compile-on-first-use ctypes driver for the fleet event kernel.

The hot event loop of the columnar fleet path lives in ``_cloop.c``, a
straight transliteration of ``FleetServer._fast_loop_python``.  This
module compiles it with the system C compiler on first use (cached in
the temp directory, keyed by a hash of the source), loads it through
:mod:`ctypes`, and drives the pause/resume protocol: the kernel returns
to Python whenever a growable buffer would overflow or the pre-drawn
serve uniforms run dry, the driver grows/refills the numpy buffer and
resumes.  Everything the kernel touches is a numpy array owned here, so
the canonical flat state comes back with zero copying.

No compiler, a failed compile, or ``REPRO_NO_CLOOP=1`` all degrade to
``run_event_loop`` returning ``None``; the server then runs the
pure-Python fallback loop, which produces byte-identical state.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.fleet.fastrng import VecPcg

__all__ = ["available", "run_event_loop"]

_SRC = Path(__file__).with_name("_cloop.c")

_ST_DONE = 0
_ST_NEED_DRAWS = 1
_ST_GROW_HEAP = 2
_ST_GROW_NEED = 3
_ST_GROW_REP = 4
_ST_GROW_RET = 5

_K_REQUEST = 0

_P = ctypes.c_void_p
_I = ctypes.c_int64
_D = ctypes.c_double


class _FleetCtx(ctypes.Structure):
    """Mirror of the C ``FleetCtx`` — every field is 8 bytes, so the
    layouts agree with no padding on any LP64 platform."""

    _fields_ = [
        ("n", _I), ("nwu", _I), ("quorum", _I), ("max_replicas", _I),
        ("horizon", _D), ("err_rate", _D),
        ("n_delays", _I),
        ("fs", _P), ("fe", _P), ("soff", _P),
        ("departure", _P), ("an", _P), ("base", _P),
        ("stretch", _P), ("delays", _P),
        ("draws", _P), ("rounds_avail", _I),
        ("wu_state", _P), ("wu_validated", _P),
        ("wu_issued", _P), ("wu_out", _P), ("wu_tmo", _P),
        ("wu_holders", _P), ("wu_nhold", _P), ("wu_hosts", _P),
        ("r_wid", _P), ("r_host", _P), ("r_dead", _P), ("r_disp", _P),
        ("r_flag", _P), ("rep_cap", _I),
        ("ret_wid", _P), ("ret_host", _P), ("ret_cpu", _P),
        ("ret_cap", _I),
        ("need", _P), ("need_head", _I), ("need_count", _I),
        ("need_cap", _I), ("stash", _P),
        ("h_t", _P), ("h_seq", _P), ("h_pay", _P),
        ("heap_len", _I), ("heap_cap", _I),
        ("waste", _P), ("ucur", _P), ("poll_fail", _P), ("cur", _P),
        ("seq", _I), ("n_valid", _I), ("n_rep", _I), ("ret_count", _I),
        ("ok_n", _I), ("err_n", _I), ("stale_n", _I), ("tmo_n", _I),
        ("red_n", _I),
        ("err_cpu", _D), ("stale_cpu", _D), ("red_cpu", _D),
    ]


_lib: Optional[ctypes.CDLL] = None
_tried = False


def _compile() -> Optional[str]:
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        return None
    source = _SRC.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    tag = getattr(os, "getuid", lambda: 0)()
    so_path = os.path.join(
        tempfile.gettempdir(), f"repro_cloop_{digest}_{tag}.so")
    if os.path.exists(so_path):
        return so_path
    fd, tmp = tempfile.mkstemp(suffix=".so", dir=tempfile.gettempdir())
    os.close(fd)
    try:
        # -ffp-contract=off: no FMA contraction, so every double op
        # rounds exactly as CPython's interpreter does (SSE2 doubles)
        result = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
             "-o", tmp, str(_SRC)],
            capture_output=True, timeout=120)
        if result.returncode != 0:
            os.unlink(tmp)
            return None
        os.replace(tmp, so_path)
    except (OSError, subprocess.SubprocessError):
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return None
    return so_path


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _tried
    if _tried:
        return _lib
    _tried = True
    # a kill switch, not run policy: the fallback loop is byte-identical,
    # so this only ever changes speed
    if os.environ.get("REPRO_NO_CLOOP"):  # repro: allow-env-read
        return None
    so_path = _compile()
    if so_path is None:
        return None
    try:
        lib = ctypes.CDLL(so_path)
        lib.fleet_run.argtypes = [ctypes.POINTER(_FleetCtx)]
        lib.fleet_run.restype = ctypes.c_int
    except OSError:
        return None
    _lib = lib
    return _lib


def available() -> bool:
    """Whether the compiled kernel can be used on this machine."""
    return _load() is not None


def _addr(arr: np.ndarray) -> int:
    return arr.ctypes.data


def run_event_loop(prep: Any) -> Optional[Dict[str, Any]]:
    """Run the fleet event loop in C; ``None`` if the kernel is absent.

    ``prep`` is the server's ``_FastPrep``.  Returns the canonical flat
    state dict consumed by ``FleetServer._fast_report`` — identical,
    value for value, to what ``_fast_loop_python`` produces.
    """
    lib = _load()
    if lib is None:
        return None
    n = prep.n
    nwu = prep.nwu
    quorum = prep.quorum
    max_replicas = prep.max_replicas
    if quorum > 255 or n >= 2 ** 32 or nwu >= 2 ** 31:
        return None  # outside the kernel's packing assumptions

    soff = np.ascontiguousarray(prep.soff, dtype=np.int64)
    fs = np.ascontiguousarray(prep.fs, dtype=np.float64)
    fe = np.ascontiguousarray(prep.fe, dtype=np.float64)
    departure = np.ascontiguousarray(prep.departure, dtype=np.float64)
    an = np.ascontiguousarray(prep.an, dtype=np.float64)
    base = np.ascontiguousarray(prep.base, dtype=np.float64)
    stretch = np.ascontiguousarray(prep.stretch, dtype=np.float64)
    delays = np.ascontiguousarray(prep.delays, dtype=np.float64)

    wu_state = np.zeros(nwu, dtype=np.uint8)
    wu_validated = np.zeros(nwu, dtype=np.float64)
    wu_issued = np.zeros(nwu, dtype=np.int32)
    wu_out = np.zeros(nwu, dtype=np.int32)
    wu_tmo = np.zeros(nwu, dtype=np.int32)
    wu_holders = np.full(nwu * quorum, -1, dtype=np.int32)
    wu_nhold = np.zeros(nwu, dtype=np.uint8)
    wu_hosts = np.full(nwu * max_replicas, -1, dtype=np.int32)

    rep_cap = max(4096, 2 * n)
    r_wid = np.empty(rep_cap, dtype=np.int32)
    r_host = np.empty(rep_cap, dtype=np.int32)
    r_dead = np.empty(rep_cap, dtype=np.float64)
    r_disp = np.empty(rep_cap, dtype=np.float64)
    r_flag = np.empty(rep_cap, dtype=np.uint8)

    ret_cap = max(4096, 2 * n)
    ret_wid = np.empty(ret_cap, dtype=np.int32)
    ret_host = np.empty(ret_cap, dtype=np.int32)
    ret_cpu = np.empty(ret_cap, dtype=np.float64)

    need_cap = nwu * quorum + n + 1024
    need = np.empty(need_cap, dtype=np.int32)
    initial_need = np.repeat(
        np.arange(nwu, dtype=np.int32), quorum)
    need[:len(initial_need)] = initial_need
    stash = np.empty(need_cap, dtype=np.int32)

    heap_cap = max(1024, 2 * n)
    h_t = np.empty(heap_cap, dtype=np.float64)
    h_seq = np.empty(heap_cap, dtype=np.int64)
    h_pay = np.empty(heap_cap, dtype=np.uint64)
    # initial REQUEST events: one per host with sessions, seq assigned
    # in host order; a (t, seq)-sorted array is a valid binary min-heap
    has_sessions = np.flatnonzero(soff[1:] > soff[:-1])
    first_start = fs[soff[:-1][has_sessions]]
    seqs = np.arange(len(has_sessions), dtype=np.int64)
    order = np.lexsort((seqs, first_start))
    k = len(has_sessions)
    h_t[:k] = first_start[order]
    h_seq[:k] = seqs[order]
    h_pay[:k] = has_sessions[order].astype(np.uint64)  # K_REQUEST == 0

    waste = np.zeros(n, dtype=np.float64)
    ucur = np.zeros(n, dtype=np.int32)
    poll_fail = np.zeros(n, dtype=np.int32)
    cur = soff[:n].copy()

    serve_vec = VecPcg.seeded(prep.serve_seed, "error")
    draw_rounds = 0
    draws = np.empty((8, n), dtype=np.float64)

    ctx = _FleetCtx()
    ctx.n = n
    ctx.nwu = nwu
    ctx.quorum = quorum
    ctx.max_replicas = max_replicas
    ctx.horizon = prep.horizon
    ctx.err_rate = prep.err_rate
    ctx.n_delays = len(delays)
    for name, arr in (
            ("fs", fs), ("fe", fe), ("soff", soff),
            ("departure", departure), ("an", an), ("base", base),
            ("stretch", stretch), ("delays", delays),
            ("wu_state", wu_state), ("wu_validated", wu_validated),
            ("wu_issued", wu_issued), ("wu_out", wu_out),
            ("wu_tmo", wu_tmo), ("wu_holders", wu_holders),
            ("wu_nhold", wu_nhold), ("wu_hosts", wu_hosts),
            ("waste", waste), ("ucur", ucur),
            ("poll_fail", poll_fail), ("cur", cur)):
        setattr(ctx, name, _addr(arr))
    ctx.draws = _addr(draws)
    ctx.rounds_avail = draw_rounds
    ctx.r_wid = _addr(r_wid)
    ctx.r_host = _addr(r_host)
    ctx.r_dead = _addr(r_dead)
    ctx.r_disp = _addr(r_disp)
    ctx.r_flag = _addr(r_flag)
    ctx.rep_cap = rep_cap
    ctx.ret_wid = _addr(ret_wid)
    ctx.ret_host = _addr(ret_host)
    ctx.ret_cpu = _addr(ret_cpu)
    ctx.ret_cap = ret_cap
    ctx.need = _addr(need)
    ctx.need_head = 0
    ctx.need_count = len(initial_need)
    ctx.need_cap = need_cap
    ctx.stash = _addr(stash)
    ctx.h_t = _addr(h_t)
    ctx.h_seq = _addr(h_seq)
    ctx.h_pay = _addr(h_pay)
    ctx.heap_len = k
    ctx.heap_cap = heap_cap
    ctx.seq = k
    ctx.n_valid = 0
    ctx.n_rep = 0
    ctx.ret_count = 0
    ctx.ok_n = ctx.err_n = ctx.stale_n = ctx.tmo_n = ctx.red_n = 0
    ctx.err_cpu = ctx.stale_cpu = ctx.red_cpu = 0.0

    while True:
        status = lib.fleet_run(ctypes.byref(ctx))
        if status == _ST_DONE:
            break
        if status == _ST_NEED_DRAWS:
            if draw_rounds == draws.shape[0]:
                grown = np.empty((2 * draw_rounds, n), dtype=np.float64)
                grown[:draw_rounds] = draws
                draws = grown
                ctx.draws = _addr(draws)
            draws[draw_rounds] = serve_vec.doubles()
            draw_rounds += 1
            ctx.rounds_avail = draw_rounds
        elif status == _ST_GROW_REP:
            rep_cap *= 2
            r_wid, r_host, r_dead, r_disp, r_flag = (
                _grow(r_wid, rep_cap), _grow(r_host, rep_cap),
                _grow(r_dead, rep_cap), _grow(r_disp, rep_cap),
                _grow(r_flag, rep_cap))
            ctx.r_wid = _addr(r_wid)
            ctx.r_host = _addr(r_host)
            ctx.r_dead = _addr(r_dead)
            ctx.r_disp = _addr(r_disp)
            ctx.r_flag = _addr(r_flag)
            ctx.rep_cap = rep_cap
        elif status == _ST_GROW_RET:
            ret_cap *= 2
            ret_wid, ret_host, ret_cpu = (
                _grow(ret_wid, ret_cap), _grow(ret_host, ret_cap),
                _grow(ret_cpu, ret_cap))
            ctx.ret_wid = _addr(ret_wid)
            ctx.ret_host = _addr(ret_host)
            ctx.ret_cpu = _addr(ret_cpu)
            ctx.ret_cap = ret_cap
        elif status == _ST_GROW_HEAP:
            heap_cap *= 2
            h_t, h_seq, h_pay = (
                _grow(h_t, heap_cap), _grow(h_seq, heap_cap),
                _grow(h_pay, heap_cap))
            ctx.h_t = _addr(h_t)
            ctx.h_seq = _addr(h_seq)
            ctx.h_pay = _addr(h_pay)
            ctx.heap_cap = heap_cap
        elif status == _ST_GROW_NEED:
            # linearize the ring into a doubled buffer
            count = ctx.need_count
            idx = (ctx.need_head + np.arange(count)) % need_cap
            need_cap *= 2
            grown = np.empty(need_cap, dtype=np.int32)
            grown[:count] = need[idx]
            need = grown
            stash = np.empty(need_cap, dtype=np.int32)
            ctx.need = _addr(need)
            ctx.stash = _addr(stash)
            ctx.need_head = 0
            ctx.need_cap = need_cap
        else:  # pragma: no cover - unknown status means a kernel bug
            raise RuntimeError(f"fleet kernel returned status {status}")

    n_rep = int(ctx.n_rep)
    ret_count = int(ctx.ret_count)
    return {
        "n_valid": int(ctx.n_valid),
        "n_rep": n_rep,
        "ok_n": int(ctx.ok_n),
        "err_n": int(ctx.err_n),
        "stale_n": int(ctx.stale_n),
        "tmo_n": int(ctx.tmo_n),
        "red_n": int(ctx.red_n),
        "err_cpu": float(ctx.err_cpu),
        "stale_cpu": float(ctx.stale_cpu),
        "red_cpu": float(ctx.red_cpu),
        "wu_state": wu_state,
        "wu_validated": wu_validated,
        "wu_issued": wu_issued,
        "wu_out": wu_out,
        "hold_flat": wu_holders,
        "nhold": wu_nhold,
        "ret_wid": ret_wid[:ret_count],
        "ret_host": ret_host[:ret_count],
        "ret_cpu": ret_cpu[:ret_count],
        "r_host": r_host[:n_rep],
        "r_disp": r_disp[:n_rep],
        "r_flag": r_flag[:n_rep],
        "waste": waste,
    }


def _grow(arr: np.ndarray, new_cap: int) -> np.ndarray:
    grown = np.empty(new_cap, dtype=arr.dtype)
    grown[:len(arr)] = arr
    return grown
