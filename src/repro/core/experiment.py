"""Repetition framework: run a measurement function many times, each in a
fresh simulated world seeded independently, and summarise.

Repetition counts
-----------------
The paper performs every test at least 50 times.  Full fidelity is
expensive for the heavier figures, so counts resolve through the
:class:`repro.api.RunConfig` policy:

* ``RunConfig(reps=n)``   — explicit override, used verbatim;
* ``RunConfig(full=True)`` — the paper's 50 everywhere;
* ``RunConfig(fast=True)`` — 3 (CI smoke);
* otherwise               — the per-experiment default passed by the caller.

The legacy ``REPRO_REPS`` / ``REPRO_FULL`` / ``REPRO_FAST`` environment
variables keep working through :meth:`repro.api.RunConfig.from_env`, the
single place environment policy is interpreted; a library call that
falls back to them (rather than activating a config) gets a
``DeprecationWarning``.

Parallelism
-----------
Repetitions are independent by construction (each gets its own world via
:func:`derive_rep_seed`), so :func:`repeat` fans them out over the
persistent worker pool when more than one job is available and there is
enough work to amortise dispatch (``REPRO_JOBS`` / ``jobs=``; see
:mod:`repro.core.parallel` and :mod:`repro.core.workerpool` — the pool
is created once and reused across repeater runs).  Parallel runs are
**bit-identical** to the serial path: same derived seeds, same
repetition ordering, same ``summarize`` inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro.core.stats import Summary, summarize
from repro.errors import ExperimentError
from repro.simcore.rng import derive_rep_seed

PAPER_REPS = 50
FAST_REPS = 3

#: A measurement: seed in, named scalar metrics out.
MeasureFn = Callable[[int], Mapping[str, float]]


def resolve_reps(default: int, env: Optional[Mapping[str, str]] = None) -> int:
    """Apply the repetition policy (explicit / full / fast / default).

    With ``env=None`` the policy comes from the activated
    :class:`repro.api.RunConfig` when one is in force, else from the
    legacy environment variables (with a ``DeprecationWarning``).  An
    explicit ``env`` mapping is interpreted directly — the testing hook.
    A malformed ``REPRO_REPS`` raises a clean :class:`ExperimentError`.
    """
    from repro import api

    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.fallback_config("reps")
    return config.resolve_reps(default)


@dataclass
class RepeatedResult:
    """All repetitions of one measurement, summarised per metric.

    ``dropped`` is empty except under the ``min_reps`` graceful
    degradation policy, where it records each abandoned repetition's
    index, derived seed, and last error (see
    :class:`repro.core.parallel.ParallelRepeater`).
    """

    metrics: Dict[str, Summary]
    raw: Dict[str, List[float]] = field(default_factory=dict)
    dropped: List[Dict[str, Any]] = field(default_factory=list)

    def __getitem__(self, key: str) -> Summary:
        try:
            return self.metrics[key]
        except KeyError:
            raise ExperimentError(
                f"no metric {key!r}; available: {sorted(self.metrics)}"
            ) from None


def collect_repetitions(
    results: Iterable[Tuple[int, int, Mapping[str, float]]],
) -> RepeatedResult:
    """Fold ``(repetition, seed, metrics)`` triples into a result.

    Shared by the serial and parallel paths so both produce identical
    ``raw`` dictionaries (same key order, same value order) and raise
    identical errors.  Triples must arrive in repetition order.  Error
    messages carry the derived seed so a failing repetition can be
    reproduced standalone via ``measure(seed)``.
    """
    raw: Dict[str, List[float]] = {}
    expected_keys = None
    for repetition, seed, metrics in results:
        if not metrics:
            raise ExperimentError(
                f"repetition {repetition} (seed {seed}) returned no metrics"
            )
        keys = set(metrics)
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ExperimentError(
                f"repetition {repetition} (seed {seed}) returned metrics "
                f"{sorted(keys)}, expected {sorted(expected_keys)}"
            )
        for key, value in metrics.items():
            raw.setdefault(key, []).append(float(value))
    return RepeatedResult(
        metrics={k: summarize(v) for k, v in raw.items()},
        raw=raw,
    )


class Repeater:
    """Runs a :data:`MeasureFn` across seeds derived from a base seed."""

    def __init__(self, base_seed: int = 0, reps: int = 5):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps

    def _results(self, measure: MeasureFn):
        for repetition in range(self.reps):
            seed = derive_rep_seed(self.base_seed, repetition)
            yield repetition, seed, measure(seed)

    def _results_hashed(self, measure: MeasureFn):
        # Mirror of _results that labels each repetition's trace-hash
        # streams exactly as the parallel path does (group allocated
        # once per repeater run, context per repetition), so serial and
        # --jobs N snapshots are comparable key-for-key.
        from repro.audit.tracehash import TRACE_HASH

        group = TRACE_HASH.begin_group()
        try:
            for repetition in range(self.reps):
                seed = derive_rep_seed(self.base_seed, repetition)
                TRACE_HASH.set_context(f"g{group}/rep{repetition}")
                yield repetition, seed, measure(seed)
        finally:
            TRACE_HASH.clear_context()

    def run(self, measure: MeasureFn) -> RepeatedResult:
        from repro.audit.tracehash import TRACE_HASH

        if TRACE_HASH.enabled:
            return collect_repetitions(self._results_hashed(measure))
        return collect_repetitions(self._results(measure))


def repeat(measure: MeasureFn, *, base_seed: int = 0,
           default_reps: int = 5, jobs: Optional[int] = None,
           reps: Optional[int] = None, retries: Optional[int] = None,
           task_timeout_s: Optional[float] = None,
           min_reps: Optional[int] = None) -> RepeatedResult:
    """Convenience: resolve reps/jobs from the run config and run.

    ``reps=`` / ``jobs=`` are explicit overrides; otherwise both resolve
    through the activated :class:`repro.api.RunConfig` (or, deprecated,
    the legacy environment).  With more than one job and more than one
    repetition the work is fanned out over a process pool (bit-identical
    results; see :class:`repro.core.parallel.ParallelRepeater`).
    ``jobs=1``, a single repetition, or an unpicklable ``measure`` all
    fall back to the serial :class:`Repeater`.

    ``retries`` / ``task_timeout_s`` / ``min_reps`` (explicit, or set on
    the activated config, or implied by an active fault plan) route the
    run through the resilient execution path even at one job — retried
    repetitions re-derive the same seeds, so recovered results are
    byte-identical to undisturbed ones.
    """
    from repro.core.parallel import ParallelRepeater, resolve_jobs
    from repro.faults import FAULTS

    if reps is None:
        reps = resolve_reps(default_reps)
    elif reps < 1:
        raise ExperimentError(f"reps must be >= 1, got {reps}")
    n_jobs = resolve_jobs(jobs)
    explicit_resilience = any(
        value is not None for value in (retries, task_timeout_s, min_reps))
    if (n_jobs > 1 and reps > 1) or explicit_resilience or FAULTS.enabled:
        return ParallelRepeater(
            base_seed, reps, jobs=n_jobs, retries=retries,
            task_timeout_s=task_timeout_s, min_reps=min_reps,
        ).run(measure)
    repeater = ParallelRepeater(base_seed, reps, jobs=1)
    if repeater._resilient:  # config-level retries/min_reps at one job
        return repeater.run(measure)
    return Repeater(base_seed, reps).run(measure)
