"""Repetition framework: run a measurement function many times, each in a
fresh simulated world seeded independently, and summarise.

Repetition counts
-----------------
The paper performs every test at least 50 times.  Full fidelity is
expensive for the heavier figures, so counts resolve as:

* ``REPRO_REPS=<n>``  — explicit override, used verbatim;
* ``REPRO_FULL=1``    — the paper's 50 everywhere;
* ``REPRO_FAST=1``    — 3 (CI smoke);
* otherwise           — the per-experiment default passed by the caller.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.stats import Summary, summarize
from repro.errors import ExperimentError
from repro.simcore.rng import derive_rep_seed

PAPER_REPS = 50
FAST_REPS = 3

#: A measurement: seed in, named scalar metrics out.
MeasureFn = Callable[[int], Mapping[str, float]]


def resolve_reps(default: int, env: Optional[Mapping[str, str]] = None) -> int:
    """Apply the REPRO_REPS / REPRO_FULL / REPRO_FAST environment policy."""
    env = env if env is not None else os.environ
    explicit = env.get("REPRO_REPS")
    if explicit:
        reps = int(explicit)
        if reps < 1:
            raise ExperimentError(f"REPRO_REPS must be >= 1, got {reps}")
        return reps
    if env.get("REPRO_FULL") == "1":
        return PAPER_REPS
    if env.get("REPRO_FAST") == "1":
        return min(FAST_REPS, default)
    return default


@dataclass
class RepeatedResult:
    """All repetitions of one measurement, summarised per metric."""

    metrics: Dict[str, Summary]
    raw: Dict[str, List[float]] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Summary:
        try:
            return self.metrics[key]
        except KeyError:
            raise ExperimentError(
                f"no metric {key!r}; available: {sorted(self.metrics)}"
            ) from None


class Repeater:
    """Runs a :data:`MeasureFn` across seeds derived from a base seed."""

    def __init__(self, base_seed: int = 0, reps: int = 5):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps

    def run(self, measure: MeasureFn) -> RepeatedResult:
        raw: Dict[str, List[float]] = {}
        expected_keys = None
        for repetition in range(self.reps):
            seed = derive_rep_seed(self.base_seed, repetition)
            metrics = measure(seed)
            if not metrics:
                raise ExperimentError("measurement returned no metrics")
            keys = set(metrics)
            if expected_keys is None:
                expected_keys = keys
            elif keys != expected_keys:
                raise ExperimentError(
                    f"repetition {repetition} returned metrics {sorted(keys)}"
                    f", expected {sorted(expected_keys)}"
                )
            for key, value in metrics.items():
                raw.setdefault(key, []).append(float(value))
        return RepeatedResult(
            metrics={k: summarize(v) for k, v in raw.items()},
            raw=raw,
        )


def repeat(measure: MeasureFn, *, base_seed: int = 0,
           default_reps: int = 5) -> RepeatedResult:
    """Convenience: resolve reps from the environment and run."""
    return Repeater(base_seed, resolve_reps(default_reps)).run(measure)
