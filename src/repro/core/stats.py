"""Statistics for benchmark repetitions.

The paper repeats every test >= 50 times and reports aggregate values; we
keep the same discipline: repeated measurements summarised as mean with a
95% confidence interval (Student-t), plus helpers for geometric means
(NBench indexes) and ratio-of-means error propagation (normalised
figures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError

# two-sided 97.5% Student-t quantiles for small n (index = dof), then ~z
_T_TABLE = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
    20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 50: 2.009, 60: 2.000,
}


def t_quantile(dof: int) -> float:
    """97.5% two-sided Student-t quantile (table lookup with fallback)."""
    if dof < 1:
        raise ExperimentError(f"degrees of freedom must be >= 1, got {dof}")
    if dof in _T_TABLE:
        return _T_TABLE[dof]
    for key in sorted(_T_TABLE):
        if dof <= key:
            return _T_TABLE[key]
    return 1.96


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one measured quantity."""

    mean: float
    std: float
    n: int
    minimum: float
    maximum: float

    @property
    def sem(self) -> float:
        if self.n <= 1:
            return 0.0
        return self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval on the mean."""
        if self.n <= 1:
            return 0.0
        return t_quantile(self.n - 1) * self.sem

    @property
    def cv(self) -> float:
        """Coefficient of variation."""
        if self.mean == 0:
            return 0.0
        return self.std / abs(self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci95:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    if len(values) == 0:
        raise ExperimentError("cannot summarise zero measurements")
    arr = np.asarray(values, dtype=float)
    if not np.isfinite(arr).all():
        raise ExperimentError(f"non-finite measurements: {arr}")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        n=len(arr),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0:
        raise ExperimentError("geometric mean of nothing")
    if (arr <= 0).any():
        raise ExperimentError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def ratio_of_means(numerator: Summary, denominator: Summary
                   ) -> Tuple[float, float]:
    """Ratio of two means with first-order error propagation.

    Returns ``(ratio, ci95_halfwidth)``.  Used for every normalised
    figure (e.g. "relative performance against native").
    """
    if denominator.mean == 0:
        raise ExperimentError("ratio against a zero-mean denominator")
    ratio = numerator.mean / denominator.mean
    rel_num = numerator.sem / abs(numerator.mean) if numerator.mean else 0.0
    rel_den = denominator.sem / abs(denominator.mean)
    rel = math.sqrt(rel_num ** 2 + rel_den ** 2)
    return ratio, 1.96 * rel * abs(ratio)


def bootstrap_ci(values: Sequence[float], n_resamples: int = 2_000,
                 seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap 95% CI for the mean (distribution-free check)."""
    if len(values) < 2:
        mean = float(values[0]) if values else 0.0
        return mean, mean
    rng = np.random.Generator(np.random.PCG64(seed))
    arr = np.asarray(values, dtype=float)
    samples = rng.choice(arr, size=(n_resamples, len(arr)), replace=True)
    means = samples.mean(axis=1)
    return float(np.percentile(means, 2.5)), float(np.percentile(means, 97.5))


def relative_change(value: float, baseline: float) -> float:
    """(value - baseline) / baseline — overhead/improvement fractions."""
    if baseline == 0:
        raise ExperimentError("relative change against zero baseline")
    return (value - baseline) / baseline
