"""Parallel repetition execution: fan independent seeded runs over cores.

The paper's methodology repeats every test >= 50 times; repetitions are
independent by construction (each builds a fresh simulated world from its
own :func:`derive_rep_seed` seed), which makes them the natural unit of
scale-out.  :class:`ParallelRepeater` submits one compact task spec per
repetition to the **persistent** worker pool
(:mod:`repro.core.workerpool`) and folds the results back **in
repetition order**, so the resulting :class:`RepeatedResult` is
bit-identical to the serial :class:`repro.core.experiment.Repeater` —
same seeds, same raw value ordering, same ``summarize`` inputs.

The pool is created once per worker count and reused across
repetitions, retry rounds, figures in a sweep and fleet shards; workers
pre-import the tree at fork time and re-arm per task from the spec's
explicit context (metrics/trace-hash enablement, fault plan, activated
run config), so a dispatch costs a pickle round-trip instead of fork +
import + warm-up.  Results come back as versioned
:class:`repro.core.workerpool.WorkerResult` records whose bulk payloads
travel via shared memory above a size threshold.

Worker-count policy (first match wins):

* explicit ``jobs=`` argument;
* the activated :class:`repro.api.RunConfig` (the ``--jobs`` CLI flag
  lands here; the legacy ``REPRO_JOBS`` variable still works through
  ``RunConfig.from_env`` with a ``DeprecationWarning`` for library
  callers);
* every *schedulable* core
  (:func:`repro.core.workerpool.available_cpus` — CPU affinity, not
  ``os.cpu_count()``).

When the metrics registry is enabled each worker ships a snapshot of its
per-subsystem counters back with its result, and the parent merges them
— so engine/scheduler/hardware counters survive process fan-out — plus
per-worker wall time and queue wait observed from the parent side.
Fault RUNLOG tallies ship the same way, so injection counts no longer
depend on the metrics registry being enabled.

Resilience
----------
Desktop grids assume workers die; so does this layer.  When retries, a
per-task timeout, a ``min_reps`` floor, or an active
:data:`repro.faults.FAULTS` plan is in force, :class:`ParallelRepeater`
switches to a round-based resilient path: failed/timed-out/crashed
repetitions are resubmitted (capped exponential backoff between rounds,
the pool invalidated and lazily rebuilt if broken), and every retried
repetition re-derives the **same** seed — so a fault-injected run that
recovers is byte-identical to a fault-free one.  With ``min_reps`` the
run degrades gracefully: it completes with at least that many successes
and records the dropped seeds plus remote tracebacks (in
``RepeatedResult.dropped`` and the parent-side
:data:`repro.faults.RUNLOG`, which run manifests pick up).  With none
of those in force the legacy fail-fast path runs untouched.

Fault-injection sites hosted here: ``worker.crash`` (hard ``os._exit``
in the worker body — breaks the pool), ``worker.hang`` (bounded sleep,
to trip task timeouts) and ``measure.transient`` (raise-once
:class:`repro.faults.InjectedFault` around the measurement).  Each
disabled site costs one attribute read and a branch.

Fallbacks: ``jobs=1``, a measurement function the pickle module cannot
serialise (e.g. a test-local closure), or — on the fail-fast path —
per-task work below the pool-dispatch threshold (``reps`` <=
:data:`SERIAL_FALLBACK_REPS`) run serially in-process, recording
``parallel.fallback_serial`` in METRICS; dispatch overhead only buys
wall-clock when there is enough work to amortise it.  The resilient
path never falls back on size alone: its timeout and process-level
fault semantics need real worker processes.  Worker failures are
re-raised as :class:`ExperimentError` carrying the offending repetition
index and derived seed plus the remote traceback, so any failing
repetition can be reproduced standalone with ``measure(seed)``.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.audit.tracehash import TRACE_HASH
from repro.core.experiment import (
    MeasureFn,
    Repeater,
    RepeatedResult,
    collect_repetitions,
)
from repro.core.workerpool import (
    WorkerPool,
    WorkerResult,
    WorkerResultError,
    _pool_context,  # noqa: F401  (re-exported; pre-pool callers import it here)
    build_task_context,
    get_pool,
    next_run_token,
    shutdown_pools,  # noqa: F401  (re-exported for the CLI/benchmarks)
)
from repro.errors import ExperimentError
from repro.faults import FAULTS, RUNLOG
from repro.obs.metrics import METRICS
from repro.simcore.rng import derive_rep_seed

#: Legacy environment variable for the default worker count (interpreted
#: only by :meth:`repro.api.RunConfig.from_env`).
JOBS_ENV = "REPRO_JOBS"

#: Backoff before retry round ``n`` is ``RETRY_BACKOFF_S * 2**(n-1)``,
#: capped at :data:`RETRY_BACKOFF_CAP_S`.
RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 2.0

#: Fail-fast runs with this many repetitions or fewer skip the pool and
#: run serially in the parent (``parallel.fallback_serial`` in METRICS):
#: two tasks cannot amortise even a warm dispatch.
SERIAL_FALLBACK_REPS = 2


def resolve_jobs(jobs: Optional[int] = None,
                 env: Optional[Mapping[str, str]] = None) -> int:
    """Worker-count policy: explicit arg, then run config, then cores.

    With ``env=None`` the policy comes from the activated
    :class:`repro.api.RunConfig` when one is in force, else from the
    legacy ``REPRO_JOBS`` variable (with a ``DeprecationWarning``).  An
    explicit ``env`` mapping is interpreted directly — the testing hook.
    """
    from repro import api

    if jobs is not None:
        return api.RunConfig().resolve_jobs(jobs)
    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.fallback_config("jobs")
    return config.resolve_jobs()


def warm_pool(jobs: Optional[int] = None) -> None:
    """Pre-fork the persistent pool a run at ``jobs`` would use.

    A no-op for ``jobs`` ≤ 1 (serial runs never touch the pool).  Batch
    drivers call this once up front so the fork cost is paid before the
    first point rather than inside it.
    """
    jobs = resolve_jobs(jobs)
    if jobs > 1:
        from repro.core.workerpool import warm_pool as _warm

        _warm(jobs)


def _encode_fn(fn) -> Optional[bytes]:
    """``fn`` pickled once parent-side for every task spec of a run;
    ``None`` when it cannot cross a process boundary."""
    try:
        return pickle.dumps(fn)
    except Exception:
        return None


def measure_is_picklable(measure: MeasureFn) -> bool:
    """Whether ``measure`` can cross a process boundary."""
    return _encode_fn(measure) is not None


def _backoff_s(round_no: int) -> float:
    """Capped exponential backoff before retry round ``round_no`` (>= 1)."""
    return min(RETRY_BACKOFF_S * 2.0 ** (round_no - 1), RETRY_BACKOFF_CAP_S)


def _run_repetition(measure: MeasureFn, repetition: int, seed: int,
                    submitted_at: float = 0.0, attempt: int = 0,
                    in_worker: bool = True, snapshot_registry: bool = True,
                    hash_group: int = 0
                    ) -> Tuple[int, int, Optional[Dict[str, float]],
                               Optional[str], float, float,
                               Optional[Dict[str, Any]],
                               Optional[Dict[str, Any]]]:
    """Worker body: one repetition, exceptions captured as text.

    Returns ``(repetition, seed, metrics, error, queue_wait_s, wall_s,
    counter_snapshot, trace_hash_snapshot)``.  A pool worker has its
    registries re-armed per task from the spec context
    (:func:`repro.core.workerpool._apply_task_context`); it resets its
    (process-private) metrics copy so the snapshot holds only this
    repetition's counters, which the parent merges back — and likewise
    for the audit trace-hash recorder, whose streams are labelled
    ``g<hash_group>/rep<n>`` (the group id is allocated parent-side) so
    they line up key-for-key with a serial run.  The resilient serial
    path runs this in the parent with ``snapshot_registry=False``
    (never reset the parent registries, parent recorders accumulate
    directly) and ``in_worker=False`` (process-level sites stay quiet).
    """
    # Cross-process queue wait: spans two clocks, so the wall clock is
    # the only option.  # repro: allow-wall-clock
    queue_wait = max(0.0, time.time() - submitted_at) if submitted_at else 0.0
    metrics_on = METRICS.enabled and snapshot_registry
    if metrics_on:
        METRICS.reset()
    thash_on = TRACE_HASH.enabled
    if thash_on:
        if snapshot_registry:
            TRACE_HASH.reset()
        TRACE_HASH.set_context(f"g{hash_group}/rep{repetition}")
    started = time.perf_counter()
    try:
        if FAULTS.enabled:
            if in_worker and FAULTS.would_fire("worker.crash",
                                               key=repetition,
                                               attempt=attempt):
                os._exit(17)  # injected hard crash; the parent accounts it
            if in_worker and FAULTS.fires("worker.hang", key=repetition,
                                          attempt=attempt):
                time.sleep(FAULTS.hang_s)
            FAULTS.raise_if("measure.transient", key=seed, attempt=attempt)
        metrics = measure(seed)
        # dict() preserves insertion order across the pickle boundary, so
        # the parent rebuilds `raw` exactly as the serial path would.
        result: Optional[Dict[str, float]] = dict(metrics)
        error = None
    except Exception:
        result, error = None, traceback.format_exc()
    wall = time.perf_counter() - started
    snapshot = METRICS.snapshot() if metrics_on else None
    thash = TRACE_HASH.snapshot() if thash_on and snapshot_registry else None
    return repetition, seed, result, error, queue_wait, wall, snapshot, thash


def _run_shard(fn, index: int, task: Any, attempt: int = 0
               ) -> Tuple[int, Any, Optional[str],
                          Optional[Dict[str, Any]]]:
    """Worker body for :func:`map_shards`: one shard, errors as text.

    Returns ``(index, result, error, counter_snapshot)``; same metrics
    snapshot/reset and fault-site protocol as :func:`_run_repetition`
    (shard keys are ``"shard:<index>"``).
    """
    metrics_on = METRICS.enabled
    if metrics_on:
        METRICS.reset()
    try:
        if FAULTS.enabled:
            key = f"shard:{index}"
            if FAULTS.would_fire("worker.crash", key=key, attempt=attempt):
                os._exit(17)
            if FAULTS.fires("worker.hang", key=key, attempt=attempt):
                time.sleep(FAULTS.hang_s)
        result, error = fn(task), None
    except Exception:
        result, error = None, traceback.format_exc()
    snapshot = METRICS.snapshot() if metrics_on else None
    return index, result, error, snapshot


def _resilience_settings(retries: Optional[int],
                         task_timeout_s: Optional[float],
                         min_reps: Optional[int]
                         ) -> Tuple[int, Optional[float], Optional[int]]:
    """Fill unset resilience knobs from the activated run config."""
    from repro import api

    config = api.active_config()
    if config is not None:
        if retries is None:
            retries = config.resolve_retries()
        if task_timeout_s is None:
            task_timeout_s = config.resolve_task_timeout_s()
        if min_reps is None:
            min_reps = config.resolve_min_reps()
    retries = 0 if retries is None else int(retries)
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if task_timeout_s is not None and task_timeout_s <= 0:
        raise ExperimentError(
            f"task_timeout_s must be > 0, got {task_timeout_s}")
    if min_reps is not None and min_reps < 1:
        raise ExperimentError(f"min_reps must be >= 1, got {min_reps}")
    return retries, task_timeout_s, min_reps


# ---------------------------------------------------------------------------
# Spec construction and shared dispatch plumbing
# ---------------------------------------------------------------------------

def _rep_spec(fn_blob: bytes, repetition: int, seed: int, attempt: int,
              hash_group: int, context: Dict[str, Any],
              run_token: int) -> Dict[str, Any]:
    """Compact TaskSpec for one repetition."""
    return {
        "kind": "rep", "fn_blob": fn_blob, "task_blob": None,
        "index": repetition, "seed": seed, "attempt": attempt,
        # Queue wait spans two processes' clocks; the wall clock is the
        # only shared reference.
        "submitted_at": time.time(),  # repro: allow-wall-clock
        "hash_group": hash_group, "context": context,
        "run_token": run_token,
    }


def _shard_spec(fn_blob: bytes, index: int, task: Any, attempt: int,
                context: Dict[str, Any], run_token: int) -> Dict[str, Any]:
    """Compact TaskSpec for one :func:`map_shards` shard."""
    return {
        "kind": "shard", "fn_blob": fn_blob,
        "task_blob": pickle.dumps(task),
        "index": index, "seed": None, "attempt": attempt,
        "submitted_at": 0.0, "hash_group": 0, "context": context,
        "run_token": run_token,
    }


def _submit_batch(pool: WorkerPool, specs: List[Dict[str, Any]]) -> list:
    """Submit one round of specs; a worker that died idle between
    dispatches breaks submission, so retry once on a rebuilt pool."""
    try:
        return [pool.submit(spec) for spec in specs]
    except Exception:
        pool.invalidate()
        return [pool.submit(spec) for spec in specs]


def _salvage_results(results: List[WorkerResult], metrics_on: bool) -> int:
    """Merge completed workers' observability after a broken round;
    returns how many tasks had finished."""
    for result in results:
        if metrics_on and result.metrics is not None:
            METRICS.merge(result.metrics)
        if result.trace_hash is not None:
            TRACE_HASH.merge(result.trace_hash)
        if result.runlog is not None:
            RUNLOG.merge(result.runlog)
    return len(results)


def _fold_observability(result: WorkerResult, metrics_on: bool,
                        timers: bool = True) -> None:
    """Merge one decoded result's snapshots into the parent registries."""
    if metrics_on:
        if timers:
            METRICS.observe("parallel.queue_wait_s", result.queue_wait_s)
            METRICS.observe("parallel.worker_wall_s", result.wall_s)
        if result.metrics is not None:
            METRICS.merge(result.metrics)
    if result.trace_hash is not None:
        TRACE_HASH.merge(result.trace_hash)
    if result.runlog is not None:
        RUNLOG.merge(result.runlog)


def map_shards(fn, tasks, jobs: Optional[int] = None,
               retries: Optional[int] = None,
               task_timeout_s: Optional[float] = None) -> list:
    """Map ``fn`` over ``tasks`` across workers, results in task order.

    The generic fan-out primitive behind fleet host building (and any
    future shard-shaped work): tasks must be picklable and independent,
    and because results come back in submission order the caller's merge
    is bit-identical to ``[fn(t) for t in tasks]`` at any worker count.
    Serial fallbacks (one worker, one task, unpicklable ``fn``) run
    in-process; worker failures re-raise as :class:`ExperimentError`
    naming the shard index with the remote traceback attached.

    Dispatch goes through the persistent pool keyed by the resolved job
    count, so consecutive ``map_shards`` calls (every fleet size in a
    scaling sweep, every figure in a report) reuse warm workers.

    With ``retries``/``task_timeout_s`` (explicit or from the activated
    run config) failed, crashed or timed-out shards are resubmitted —
    every shard must ultimately succeed (there is no ``min_reps``
    analogue for shards, since a missing shard would skew the merge).
    """
    tasks = list(tasks)
    jobs_resolved = resolve_jobs(jobs)
    workers = min(jobs_resolved, len(tasks)) if tasks else 0
    retries, task_timeout_s, _ = _resilience_settings(
        retries, task_timeout_s, None)
    fn_blob = _encode_fn(fn) if workers > 1 else None
    if workers <= 1 or fn_blob is None:
        return [fn(task) for task in tasks]
    metrics_on = METRICS.enabled
    context = build_task_context()
    run_token = next_run_token()
    pool = get_pool(jobs_resolved)
    if retries > 0 or task_timeout_s is not None or FAULTS.enabled:
        results = _map_shards_resilient(
            pool, fn_blob, tasks, retries, task_timeout_s, metrics_on,
            context, run_token)
    else:
        specs = [_shard_spec(fn_blob, index, task, 0, context, run_token)
                 for index, task in enumerate(tasks)]
        futures = _submit_batch(pool, specs)
        results = []
        for index, future in enumerate(futures):
            try:
                wire = future.result()
            except Exception as exc:
                pool.invalidate()
                finished = _salvage_results(results, metrics_on)
                raise ExperimentError(
                    f"shard {index} broke the worker pool after "
                    f"{finished} of {len(tasks)} shards had "
                    f"completed: {exc}"
                ) from exc
            try:
                results.append(WorkerResult.from_wire(wire))
            except WorkerResultError as exc:
                if metrics_on:
                    METRICS.inc("parallel.payload_quarantined")
                _salvage_results(results, metrics_on)
                raise ExperimentError(
                    f"shard {index} returned an untrusted result: {exc}"
                ) from exc
        for result in results:
            if result.error is not None:
                raise ExperimentError(
                    f"shard {result.index} failed in a worker.\n"
                    f"Worker traceback:\n{result.error}"
                )
        for result in results:
            _fold_observability(result, metrics_on, timers=False)
    if metrics_on:
        METRICS.inc("parallel.shards", len(results))
        METRICS.gauge_max("parallel.workers", workers)
    return [result.values for result in results]


def _map_shards_resilient(pool: WorkerPool, fn_blob: bytes, tasks,
                          retries: int, task_timeout_s: Optional[float],
                          metrics_on: bool, context: Dict[str, Any],
                          run_token: int) -> List[WorkerResult]:
    """Round-based retry engine for :func:`map_shards`.

    Returns completed :class:`WorkerResult` records in task order
    (snapshots already merged); raises :class:`ExperimentError` if any
    shard is still failing after the final round.
    """
    pending = list(range(len(tasks)))
    done: Dict[int, WorkerResult] = {}
    failures: Dict[int, str] = {}
    for round_no in range(retries + 1):
        if not pending:
            break
        if round_no > 0:
            time.sleep(_backoff_s(round_no))
            RUNLOG.retries += len(pending)
            if metrics_on:
                METRICS.inc("parallel.retries", len(pending))
        try:
            futures = {index: pool.submit(
                _shard_spec(fn_blob, index, tasks[index], round_no,
                            context, run_token))
                for index in pending}
        except Exception as exc:
            pool.invalidate()
            for index in pending:
                failures[index] = f"worker pool broke: {exc}"
            continue
        still_pending: List[int] = []
        pool_broken = False
        for index in pending:
            future = futures[index]
            try:
                wire = future.result(timeout=task_timeout_s)
            except FutureTimeoutError:
                future.cancel()
                pool.abandon(future)
                RUNLOG.timeouts += 1
                if metrics_on:
                    METRICS.inc("parallel.timeouts")
                failures[index] = (
                    f"timed out after {task_timeout_s}s")
                still_pending.append(index)
                pool_broken = True  # a hung worker occupies a slot
                continue
            except Exception as exc:
                if FAULTS.enabled and FAULTS.would_fire(
                        "worker.crash", key=f"shard:{index}",
                        attempt=round_no):
                    FAULTS.record("worker.crash")
                failures[index] = f"worker pool broke: {exc}"
                still_pending.append(index)
                pool_broken = True
                continue
            try:
                result = WorkerResult.from_wire(wire)
            except WorkerResultError as exc:
                if metrics_on:
                    METRICS.inc("parallel.payload_quarantined")
                failures[index] = f"untrusted worker result: {exc}"
                still_pending.append(index)
                continue
            _fold_observability(result, metrics_on, timers=False)
            if result.error is None:
                done[index] = result
            else:
                failures[index] = result.error
                still_pending.append(index)
        pending = still_pending
        if pool_broken:
            pool.invalidate()
    if pending:
        first = pending[0]
        raise ExperimentError(
            f"shard {first} failed after {retries + 1} attempt(s) "
            f"({len(done)} of {len(tasks)} shards completed).\n"
            f"Last error:\n{failures[first]}"
        )
    return [done[index] for index in sorted(done)]


class ParallelRepeater:
    """Drop-in :class:`Repeater` that spreads repetitions over processes.

    ``retries`` / ``task_timeout_s`` / ``min_reps`` default from the
    activated :class:`repro.api.RunConfig`; when all are unset and no
    fault plan is active the legacy fail-fast path runs byte-for-byte
    unchanged.
    """

    def __init__(self, base_seed: int = 0, reps: int = 5,
                 jobs: Optional[int] = None,
                 retries: Optional[int] = None,
                 task_timeout_s: Optional[float] = None,
                 min_reps: Optional[int] = None):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps
        self.jobs = resolve_jobs(jobs)
        self.retries, self.task_timeout_s, self.min_reps = \
            _resilience_settings(retries, task_timeout_s, min_reps)
        if self.min_reps is not None and self.min_reps > reps:
            raise ExperimentError(
                f"min_reps ({self.min_reps}) cannot exceed reps ({reps})")

    @property
    def _resilient(self) -> bool:
        return (self.retries > 0 or self.task_timeout_s is not None
                or self.min_reps is not None or FAULTS.enabled)

    def run(self, measure: MeasureFn) -> RepeatedResult:
        workers = min(self.jobs, self.reps)
        if self._resilient:
            return self._run_resilient(measure, workers)
        if workers <= 1:
            return Repeater(self.base_seed, self.reps).run(measure)
        if self.reps <= SERIAL_FALLBACK_REPS:
            # Adaptive fallback: too little work to amortise dispatch.
            if METRICS.enabled:
                METRICS.inc("parallel.fallback_serial")
            return Repeater(self.base_seed, self.reps).run(measure)
        fn_blob = _encode_fn(measure)
        if fn_blob is None:
            return Repeater(self.base_seed, self.reps).run(measure)
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        metrics_on = METRICS.enabled
        thash_on = TRACE_HASH.enabled
        hash_group = TRACE_HASH.begin_group() if thash_on else 0
        context = build_task_context()
        run_token = next_run_token()
        pool = get_pool(self.jobs)
        specs = [_rep_spec(fn_blob, repetition, seed, 0, hash_group,
                           context, run_token)
                 for repetition, seed in enumerate(seeds)]
        futures = _submit_batch(pool, specs)
        results: List[WorkerResult] = []
        # Collect in repetition order; the lowest failing index wins,
        # matching the serial path's first-failure semantics.
        for repetition, future in enumerate(futures):
            try:
                wire = future.result()
            except Exception as exc:
                pool.invalidate()
                finished = _salvage_results(results, metrics_on)
                raise ExperimentError(
                    f"repetition {repetition} "
                    f"(seed {seeds[repetition]}) broke the worker "
                    f"pool after {finished} of {self.reps} "
                    f"repetitions had completed: {exc}"
                ) from exc
            try:
                results.append(WorkerResult.from_wire(wire))
            except WorkerResultError as exc:
                if metrics_on:
                    METRICS.inc("parallel.payload_quarantined")
                _salvage_results(results, metrics_on)
                raise ExperimentError(
                    f"repetition {repetition} (seed {seeds[repetition]}) "
                    f"returned an untrusted result: {exc}"
                ) from exc
        for result in results:
            if result.error is not None:
                raise ExperimentError(
                    f"repetition {result.index} (seed {result.seed}) "
                    f"failed in a worker; reproduce with "
                    f"measure({result.seed}).\n"
                    f"Worker traceback:\n{result.error}"
                )
        if metrics_on:
            METRICS.inc("parallel.repetitions", len(results))
            METRICS.gauge_max("parallel.workers", workers)
        for result in results:
            _fold_observability(result, metrics_on)
        return collect_repetitions(
            (result.index, result.seed, result.values)
            for result in results
        )

    # -- resilient path ---------------------------------------------------

    def _run_resilient(self, measure: MeasureFn, workers: int
                       ) -> RepeatedResult:
        """Round-based execution with retry, timeout and degradation.

        Retried repetitions re-derive the **same** seed, so a recovered
        run's :class:`RepeatedResult` is byte-identical to a fault-free
        one; metrics snapshots from *every* returned attempt (success or
        failure) are merged so no completed work is discarded.  The
        persistent pool survives across rounds (and across runs) — it is
        invalidated, never discarded, when broken by a crash or an
        abandoned hung worker.
        """
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        fn_blob = _encode_fn(measure) if workers > 1 else None
        parallel_ok = fn_blob is not None
        metrics_on = METRICS.enabled
        thash_on = TRACE_HASH.enabled
        hash_group = TRACE_HASH.begin_group() if thash_on else 0
        completed: Dict[int, Dict[str, float]] = {}
        failures: Dict[int, str] = {}
        pending = list(range(self.reps))
        pool = get_pool(self.jobs) if parallel_ok else None
        context = build_task_context() if parallel_ok else None
        run_token = next_run_token() if parallel_ok else 0
        try:
            for round_no in range(self.retries + 1):
                if not pending:
                    break
                if round_no > 0:
                    time.sleep(_backoff_s(round_no))
                    RUNLOG.retries += len(pending)
                    if metrics_on:
                        METRICS.inc("parallel.retries", len(pending))
                if parallel_ok:
                    pending = self._parallel_round(
                        pool, fn_blob, seeds, pending, round_no, context,
                        run_token, completed, failures, metrics_on,
                        hash_group)
                else:
                    pending = self._serial_round(
                        measure, seeds, pending, round_no,
                        completed, failures, metrics_on, hash_group)
        finally:
            if thash_on:
                TRACE_HASH.clear_context()
        if metrics_on:
            METRICS.inc("parallel.repetitions", len(completed))
            if parallel_ok:
                METRICS.gauge_max("parallel.workers", workers)
        return self._fold(seeds, completed, failures, metrics_on)

    def _parallel_round(self, pool, fn_blob, seeds, pending, round_no,
                        context, run_token, completed, failures,
                        metrics_on, hash_group=0):
        """One submission round over the persistent pool; returns the
        still-pending repetitions.  A broken/hung pool is invalidated
        (shut down without waiting) and rebuilt lazily on the next
        dispatch."""
        try:
            futures = {
                repetition: pool.submit(
                    _rep_spec(fn_blob, repetition, seeds[repetition],
                              round_no, hash_group, context, run_token))
                for repetition in pending
            }
        except Exception as exc:
            # A worker died idle between rounds: fail the whole round,
            # which retries on a rebuilt pool.
            pool.invalidate()
            for repetition in pending:
                failures[repetition] = f"worker pool broke: {exc}"
            return list(pending)
        still_pending: List[int] = []
        pool_broken = False
        for repetition in pending:
            future = futures[repetition]
            try:
                wire = future.result(timeout=self.task_timeout_s)
            except FutureTimeoutError:
                future.cancel()
                pool.abandon(future)
                RUNLOG.timeouts += 1
                if metrics_on:
                    METRICS.inc("parallel.timeouts")
                failures[repetition] = (
                    f"timed out after {self.task_timeout_s}s")
                still_pending.append(repetition)
                pool_broken = True  # the hung worker occupies a slot
                continue
            except Exception as exc:
                # A crashed worker takes its fault tally with it; the
                # decision is deterministic, so account it parent-side.
                if FAULTS.enabled and FAULTS.would_fire(
                        "worker.crash", key=repetition, attempt=round_no):
                    FAULTS.record("worker.crash")
                failures[repetition] = f"worker pool broke: {exc}"
                still_pending.append(repetition)
                pool_broken = True
                continue
            try:
                result = WorkerResult.from_wire(wire)
            except WorkerResultError as exc:
                if metrics_on:
                    METRICS.inc("parallel.payload_quarantined")
                failures[repetition] = f"untrusted worker result: {exc}"
                still_pending.append(repetition)
                continue
            _fold_observability(result, metrics_on)
            if result.error is None:
                completed[repetition] = result.values
            else:
                failures[repetition] = result.error
                still_pending.append(repetition)
        if pool_broken:
            pool.invalidate()
        return still_pending

    def _serial_round(self, measure, seeds, pending, round_no,
                      completed, failures, metrics_on, hash_group=0):
        """In-process round (one worker, or unpicklable ``measure``).

        Runs in the parent: process-level sites (``worker.crash`` /
        ``worker.hang``) stay quiet and the parent metrics registry is
        never reset (the trace-hash recorder likewise accumulates
        in-parent, under the same ``g<group>/rep<n>`` context labels the
        worker path uses); ``task_timeout_s`` cannot interrupt
        in-process work and is ignored here.
        """
        still_pending: List[int] = []
        for repetition in pending:
            (_rep, _seed, metrics, error, _qw, wall, _snap,
             _thash) = _run_repetition(
                measure, repetition, seeds[repetition], 0.0, round_no,
                in_worker=False, snapshot_registry=False,
                hash_group=hash_group)
            if metrics_on:
                METRICS.observe("parallel.worker_wall_s", wall)
            if error is None:
                completed[repetition] = metrics
            else:
                failures[repetition] = error
                still_pending.append(repetition)
        return still_pending

    def _fold(self, seeds, completed, failures, metrics_on
              ) -> RepeatedResult:
        """Collect successes; degrade via ``min_reps`` or fail fast."""
        failed = [r for r in range(self.reps) if r not in completed]
        dropped: List[Dict[str, Any]] = []
        if failed:
            if self.min_reps is None or len(completed) < self.min_reps:
                first = failed[0]
                raise ExperimentError(
                    f"repetition {first} (seed {seeds[first]}) failed "
                    f"after {self.retries + 1} attempt(s) "
                    f"({len(completed)} of {self.reps} repetitions "
                    f"completed); reproduce with measure({seeds[first]}).\n"
                    f"Worker traceback:\n{failures[first]}"
                )
            dropped = [
                {"repetition": r, "seed": seeds[r],
                 "error": failures[r].strip().splitlines()[-1]
                 if failures[r].strip() else "unknown",
                 "traceback": failures[r]}
                for r in failed
            ]
            RUNLOG.dropped.extend(dropped)
            if metrics_on:
                METRICS.inc("parallel.dropped", len(dropped))
        result = collect_repetitions(
            (repetition, seeds[repetition], completed[repetition])
            for repetition in sorted(completed)
        )
        result.dropped = dropped
        return result
