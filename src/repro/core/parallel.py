"""Parallel repetition execution: fan independent seeded runs over cores.

The paper's methodology repeats every test >= 50 times; repetitions are
independent by construction (each builds a fresh simulated world from its
own :func:`derive_rep_seed` seed), which makes them the natural unit of
scale-out.  :class:`ParallelRepeater` submits one task per repetition to a
``ProcessPoolExecutor`` and folds the results back **in repetition
order**, so the resulting :class:`RepeatedResult` is bit-identical to the
serial :class:`repro.core.experiment.Repeater` — same seeds, same raw
value ordering, same ``summarize`` inputs.

Worker-count policy (first match wins):

* explicit ``jobs=`` argument;
* the activated :class:`repro.api.RunConfig` (the ``--jobs`` CLI flag
  lands here; the legacy ``REPRO_JOBS`` variable still works through
  ``RunConfig.from_env`` with a ``DeprecationWarning`` for library
  callers);
* ``os.cpu_count()``.

When the metrics registry is enabled each worker ships a snapshot of its
per-subsystem counters back with its result, and the parent merges them
— so engine/scheduler/hardware counters survive process fan-out — plus
per-worker wall time and queue wait observed from the parent side.

Resilience
----------
Desktop grids assume workers die; so does this layer.  When retries, a
per-task timeout, a ``min_reps`` floor, or an active
:data:`repro.faults.FAULTS` plan is in force, :class:`ParallelRepeater`
switches to a round-based resilient path: failed/timed-out/crashed
repetitions are resubmitted (capped exponential backoff between rounds,
the pool rebuilt if broken), and every retried repetition re-derives the
**same** seed — so a fault-injected run that recovers is byte-identical
to a fault-free one.  With ``min_reps`` the run degrades gracefully:
it completes with at least that many successes and records the dropped
seeds plus remote tracebacks (in ``RepeatedResult.dropped`` and the
parent-side :data:`repro.faults.RUNLOG`, which run manifests pick up).
With none of those in force the legacy fail-fast path runs untouched.

Fault-injection sites hosted here: ``worker.crash`` (hard ``os._exit``
in the worker body — breaks the pool), ``worker.hang`` (bounded sleep,
to trip task timeouts) and ``measure.transient`` (raise-once
:class:`repro.faults.InjectedFault` around the measurement).  Each
disabled site costs one attribute read and a branch.

Fallbacks: ``jobs=1``, a single repetition, or a measurement function the
pickle module cannot serialise (e.g. a test-local closure) run serially
in-process.  Worker failures are re-raised as :class:`ExperimentError`
carrying the offending repetition index and derived seed plus the remote
traceback, so any failing repetition can be reproduced standalone with
``measure(seed)``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.audit.tracehash import TRACE_HASH
from repro.core.experiment import (
    MeasureFn,
    Repeater,
    RepeatedResult,
    collect_repetitions,
)
from repro.errors import ExperimentError
from repro.faults import FAULTS, RUNLOG
from repro.obs.metrics import METRICS
from repro.simcore.rng import derive_rep_seed

#: Legacy environment variable for the default worker count (interpreted
#: only by :meth:`repro.api.RunConfig.from_env`).
JOBS_ENV = "REPRO_JOBS"

#: Backoff before retry round ``n`` is ``RETRY_BACKOFF_S * 2**(n-1)``,
#: capped at :data:`RETRY_BACKOFF_CAP_S`.
RETRY_BACKOFF_S = 0.05
RETRY_BACKOFF_CAP_S = 2.0


def resolve_jobs(jobs: Optional[int] = None,
                 env: Optional[Mapping[str, str]] = None) -> int:
    """Worker-count policy: explicit arg, then run config, then cores.

    With ``env=None`` the policy comes from the activated
    :class:`repro.api.RunConfig` when one is in force, else from the
    legacy ``REPRO_JOBS`` variable (with a ``DeprecationWarning``).  An
    explicit ``env`` mapping is interpreted directly — the testing hook.
    """
    from repro import api

    if jobs is not None:
        return api.RunConfig().resolve_jobs(jobs)
    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.fallback_config("jobs")
    return config.resolve_jobs()


def measure_is_picklable(measure: MeasureFn) -> bool:
    """Whether ``measure`` can cross a process boundary."""
    try:
        pickle.dumps(measure)
        return True
    except Exception:
        return False


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _backoff_s(round_no: int) -> float:
    """Capped exponential backoff before retry round ``round_no`` (>= 1)."""
    return min(RETRY_BACKOFF_S * 2.0 ** (round_no - 1), RETRY_BACKOFF_CAP_S)


def _run_repetition(measure: MeasureFn, repetition: int, seed: int,
                    submitted_at: float = 0.0, attempt: int = 0,
                    in_worker: bool = True, snapshot_registry: bool = True,
                    hash_group: int = 0
                    ) -> Tuple[int, int, Optional[Dict[str, float]],
                               Optional[str], float, float,
                               Optional[Dict[str, Any]],
                               Optional[Dict[str, Any]]]:
    """Worker body: one repetition, exceptions captured as text.

    Returns ``(repetition, seed, metrics, error, queue_wait_s, wall_s,
    counter_snapshot, trace_hash_snapshot)``.  A forked worker inherits
    an enabled metrics registry; it resets its (process-private) copy so
    the snapshot holds only this repetition's counters, which the parent
    merges back — and likewise for the audit trace-hash recorder, whose
    streams are labelled ``g<hash_group>/rep<n>`` (the group id is
    allocated parent-side) so they line up key-for-key with a serial
    run.  The resilient serial path runs this in the parent with
    ``snapshot_registry=False`` (never reset the parent registries,
    parent recorders accumulate directly) and ``in_worker=False``
    (process-level sites stay quiet).
    """
    # Cross-process queue wait: spans two clocks, so the wall clock is
    # the only option.  # repro: allow-wall-clock
    queue_wait = max(0.0, time.time() - submitted_at) if submitted_at else 0.0
    metrics_on = METRICS.enabled and snapshot_registry
    if metrics_on:
        METRICS.reset()
    thash_on = TRACE_HASH.enabled
    if thash_on:
        if snapshot_registry:
            TRACE_HASH.reset()
        TRACE_HASH.set_context(f"g{hash_group}/rep{repetition}")
    started = time.perf_counter()
    try:
        if FAULTS.enabled:
            if in_worker and FAULTS.would_fire("worker.crash",
                                               key=repetition,
                                               attempt=attempt):
                os._exit(17)  # injected hard crash; the parent accounts it
            if in_worker and FAULTS.fires("worker.hang", key=repetition,
                                          attempt=attempt):
                time.sleep(FAULTS.hang_s)
            FAULTS.raise_if("measure.transient", key=seed, attempt=attempt)
        metrics = measure(seed)
        # dict() preserves insertion order across the pickle boundary, so
        # the parent rebuilds `raw` exactly as the serial path would.
        result: Optional[Dict[str, float]] = dict(metrics)
        error = None
    except Exception:
        result, error = None, traceback.format_exc()
    wall = time.perf_counter() - started
    snapshot = METRICS.snapshot() if metrics_on else None
    thash = TRACE_HASH.snapshot() if thash_on and snapshot_registry else None
    return repetition, seed, result, error, queue_wait, wall, snapshot, thash


def _run_shard(fn, index: int, task: Any, attempt: int = 0
               ) -> Tuple[int, Any, Optional[str],
                          Optional[Dict[str, Any]]]:
    """Worker body for :func:`map_shards`: one shard, errors as text.

    Returns ``(index, result, error, counter_snapshot)``; same metrics
    snapshot/reset and fault-site protocol as :func:`_run_repetition`
    (shard keys are ``"shard:<index>"``).
    """
    metrics_on = METRICS.enabled
    if metrics_on:
        METRICS.reset()
    try:
        if FAULTS.enabled:
            key = f"shard:{index}"
            if FAULTS.would_fire("worker.crash", key=key, attempt=attempt):
                os._exit(17)
            if FAULTS.fires("worker.hang", key=key, attempt=attempt):
                time.sleep(FAULTS.hang_s)
        result, error = fn(task), None
    except Exception:
        result, error = None, traceback.format_exc()
    snapshot = METRICS.snapshot() if metrics_on else None
    return index, result, error, snapshot


def _resilience_settings(retries: Optional[int],
                         task_timeout_s: Optional[float],
                         min_reps: Optional[int]
                         ) -> Tuple[int, Optional[float], Optional[int]]:
    """Fill unset resilience knobs from the activated run config."""
    from repro import api

    config = api.active_config()
    if config is not None:
        if retries is None:
            retries = config.resolve_retries()
        if task_timeout_s is None:
            task_timeout_s = config.resolve_task_timeout_s()
        if min_reps is None:
            min_reps = config.resolve_min_reps()
    retries = 0 if retries is None else int(retries)
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if task_timeout_s is not None and task_timeout_s <= 0:
        raise ExperimentError(
            f"task_timeout_s must be > 0, got {task_timeout_s}")
    if min_reps is not None and min_reps < 1:
        raise ExperimentError(f"min_reps must be >= 1, got {min_reps}")
    return retries, task_timeout_s, min_reps


def _salvage_round(results: List[tuple], metrics_on: bool) -> int:
    """Merge completed workers' snapshots after a broken round; returns
    how many repetitions had finished.

    Accepts both worker tuple shapes: ``_run_shard`` rows end with the
    counter snapshot, ``_run_repetition`` rows carry (counter snapshot,
    trace-hash snapshot) in the last two slots.
    """
    for row in results:
        counters = row[6] if len(row) >= 8 else row[-1]
        if metrics_on and counters is not None:
            METRICS.merge(counters)
        if len(row) >= 8 and row[7] is not None:
            TRACE_HASH.merge(row[7])
    return len(results)


def map_shards(fn, tasks, jobs: Optional[int] = None,
               retries: Optional[int] = None,
               task_timeout_s: Optional[float] = None) -> list:
    """Map ``fn`` over ``tasks`` across workers, results in task order.

    The generic fan-out primitive behind fleet host building (and any
    future shard-shaped work): tasks must be picklable and independent,
    and because results come back in submission order the caller's merge
    is bit-identical to ``[fn(t) for t in tasks]`` at any worker count.
    Serial fallbacks (one worker, one task, unpicklable ``fn``) run
    in-process; worker failures re-raise as :class:`ExperimentError`
    naming the shard index with the remote traceback attached.

    With ``retries``/``task_timeout_s`` (explicit or from the activated
    run config) failed, crashed or timed-out shards are resubmitted —
    every shard must ultimately succeed (there is no ``min_reps``
    analogue for shards, since a missing shard would skew the merge).
    """
    tasks = list(tasks)
    workers = min(resolve_jobs(jobs), len(tasks)) if tasks else 0
    retries, task_timeout_s, _ = _resilience_settings(
        retries, task_timeout_s, None)
    if workers <= 1 or not measure_is_picklable(fn):
        return [fn(task) for task in tasks]
    metrics_on = METRICS.enabled
    if retries > 0 or task_timeout_s is not None or FAULTS.enabled:
        gathered = _map_shards_resilient(
            fn, tasks, workers, retries, task_timeout_s, metrics_on)
    else:
        gathered = []
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            futures = [pool.submit(_run_shard, fn, index, task)
                       for index, task in enumerate(tasks)]
            for index, future in enumerate(futures):
                try:
                    gathered.append(future.result())
                except Exception as exc:
                    finished = _salvage_round(gathered, metrics_on)
                    raise ExperimentError(
                        f"shard {index} broke the worker pool after "
                        f"{finished} of {len(tasks)} shards had "
                        f"completed: {exc}"
                    ) from exc
        for index, _result, error, _snapshot in gathered:
            if error is not None:
                raise ExperimentError(
                    f"shard {index} failed in a worker.\n"
                    f"Worker traceback:\n{error}"
                )
        if metrics_on:
            for _index, _result, _error, snapshot in gathered:
                if snapshot is not None:
                    METRICS.merge(snapshot)
    if metrics_on:
        METRICS.inc("parallel.shards", len(gathered))
        METRICS.gauge_max("parallel.workers", workers)
    return [result for _index, result, _error, _snapshot in gathered]


def _map_shards_resilient(fn, tasks, workers: int, retries: int,
                          task_timeout_s: Optional[float],
                          metrics_on: bool) -> List[tuple]:
    """Round-based retry engine for :func:`map_shards`.

    Returns completed ``(index, result, None, snapshot)`` tuples in task
    order (snapshots already merged); raises :class:`ExperimentError` if
    any shard is still failing after the final round.
    """
    pending = list(range(len(tasks)))
    done: Dict[int, tuple] = {}
    failures: Dict[int, str] = {}
    pool: Optional[ProcessPoolExecutor] = None
    try:
        for round_no in range(retries + 1):
            if not pending:
                break
            if round_no > 0:
                time.sleep(_backoff_s(round_no))
                RUNLOG.retries += len(pending)
                if metrics_on:
                    METRICS.inc("parallel.retries", len(pending))
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=workers,
                                           mp_context=_pool_context())
            futures = {index: pool.submit(_run_shard, fn, index,
                                          tasks[index], round_no)
                       for index in pending}
            still_pending: List[int] = []
            pool_broken = False
            for index in pending:
                future = futures[index]
                try:
                    result = future.result(timeout=task_timeout_s)
                except FutureTimeoutError:
                    future.cancel()
                    RUNLOG.timeouts += 1
                    if metrics_on:
                        METRICS.inc("parallel.timeouts")
                    failures[index] = (
                        f"timed out after {task_timeout_s}s")
                    still_pending.append(index)
                    pool_broken = True  # a hung worker occupies a slot
                    continue
                except Exception as exc:
                    if FAULTS.enabled and FAULTS.would_fire(
                            "worker.crash", key=f"shard:{index}",
                            attempt=round_no):
                        FAULTS.record("worker.crash")
                    failures[index] = f"worker pool broke: {exc}"
                    still_pending.append(index)
                    pool_broken = True
                    continue
                _index, payload, error, snapshot = result
                if metrics_on and snapshot is not None:
                    METRICS.merge(snapshot)
                if error is None:
                    done[index] = (index, payload, None, snapshot)
                else:
                    failures[index] = error
                    still_pending.append(index)
            pending = still_pending
            if pool_broken:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
    if pending:
        first = pending[0]
        raise ExperimentError(
            f"shard {first} failed after {retries + 1} attempt(s) "
            f"({len(done)} of {len(tasks)} shards completed).\n"
            f"Last error:\n{failures[first]}"
        )
    return [done[index] for index in sorted(done)]


class ParallelRepeater:
    """Drop-in :class:`Repeater` that spreads repetitions over processes.

    ``retries`` / ``task_timeout_s`` / ``min_reps`` default from the
    activated :class:`repro.api.RunConfig`; when all are unset and no
    fault plan is active the legacy fail-fast path runs byte-for-byte
    unchanged.
    """

    def __init__(self, base_seed: int = 0, reps: int = 5,
                 jobs: Optional[int] = None,
                 retries: Optional[int] = None,
                 task_timeout_s: Optional[float] = None,
                 min_reps: Optional[int] = None):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps
        self.jobs = resolve_jobs(jobs)
        self.retries, self.task_timeout_s, self.min_reps = \
            _resilience_settings(retries, task_timeout_s, min_reps)
        if self.min_reps is not None and self.min_reps > reps:
            raise ExperimentError(
                f"min_reps ({self.min_reps}) cannot exceed reps ({reps})")

    @property
    def _resilient(self) -> bool:
        return (self.retries > 0 or self.task_timeout_s is not None
                or self.min_reps is not None or FAULTS.enabled)

    def run(self, measure: MeasureFn) -> RepeatedResult:
        workers = min(self.jobs, self.reps)
        if self._resilient:
            return self._run_resilient(measure, workers)
        if workers <= 1 or not measure_is_picklable(measure):
            return Repeater(self.base_seed, self.reps).run(measure)
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        results = []
        metrics_on = METRICS.enabled
        thash_on = TRACE_HASH.enabled
        hash_group = TRACE_HASH.begin_group() if thash_on else 0
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            futures = [
                pool.submit(_run_repetition, measure, repetition, seed,
                            time.time(),  # repro: allow-wall-clock
                            hash_group=hash_group)
                for repetition, seed in enumerate(seeds)
            ]
            # Collect in repetition order; the lowest failing index wins,
            # matching the serial path's first-failure semantics.
            for repetition, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    finished = _salvage_round(results, metrics_on)
                    raise ExperimentError(
                        f"repetition {repetition} "
                        f"(seed {seeds[repetition]}) broke the worker "
                        f"pool after {finished} of {self.reps} "
                        f"repetitions had completed: {exc}"
                    ) from exc
        for repetition, seed, _metrics, error, *_rest in results:
            if error is not None:
                raise ExperimentError(
                    f"repetition {repetition} (seed {seed}) failed in a "
                    f"worker; reproduce with measure({seed}).\n"
                    f"Worker traceback:\n{error}"
                )
        if metrics_on:
            METRICS.inc("parallel.repetitions", len(results))
            METRICS.gauge_max("parallel.workers", workers)
            for row in results:
                _rep, _seed, _m, _err, queue_wait, wall, snapshot, _th = row
                METRICS.observe("parallel.queue_wait_s", queue_wait)
                METRICS.observe("parallel.worker_wall_s", wall)
                if snapshot is not None:
                    METRICS.merge(snapshot)
        if thash_on:
            for row in results:
                if row[7] is not None:
                    TRACE_HASH.merge(row[7])
        return collect_repetitions(
            (repetition, seed, metrics)
            for repetition, seed, metrics, _error, *_timing in results
        )

    # -- resilient path ---------------------------------------------------

    def _run_resilient(self, measure: MeasureFn, workers: int
                       ) -> RepeatedResult:
        """Round-based execution with retry, timeout and degradation.

        Retried repetitions re-derive the **same** seed, so a recovered
        run's :class:`RepeatedResult` is byte-identical to a fault-free
        one; metrics snapshots from *every* returned attempt (success or
        failure) are merged so no completed work is discarded.
        """
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        parallel_ok = workers > 1 and measure_is_picklable(measure)
        metrics_on = METRICS.enabled
        thash_on = TRACE_HASH.enabled
        hash_group = TRACE_HASH.begin_group() if thash_on else 0
        completed: Dict[int, Dict[str, float]] = {}
        failures: Dict[int, str] = {}
        pending = list(range(self.reps))
        pool: Optional[ProcessPoolExecutor] = None
        try:
            for round_no in range(self.retries + 1):
                if not pending:
                    break
                if round_no > 0:
                    time.sleep(_backoff_s(round_no))
                    RUNLOG.retries += len(pending)
                    if metrics_on:
                        METRICS.inc("parallel.retries", len(pending))
                if parallel_ok:
                    pending, pool = self._parallel_round(
                        measure, seeds, pending, round_no, workers, pool,
                        completed, failures, metrics_on, hash_group)
                else:
                    pending = self._serial_round(
                        measure, seeds, pending, round_no,
                        completed, failures, metrics_on, hash_group)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            if thash_on:
                TRACE_HASH.clear_context()
        if metrics_on:
            METRICS.inc("parallel.repetitions", len(completed))
            if parallel_ok:
                METRICS.gauge_max("parallel.workers", workers)
        return self._fold(seeds, completed, failures, metrics_on)

    def _parallel_round(self, measure, seeds, pending, round_no, workers,
                        pool, completed, failures, metrics_on,
                        hash_group=0):
        """One submission round over the pool; returns (still-pending,
        pool-or-None).  A broken/hung pool is shut down without waiting
        and rebuilt lazily next round."""
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=_pool_context())
        futures = {
            repetition: pool.submit(_run_repetition, measure, repetition,
                                    seeds[repetition],
                                    time.time(),  # repro: allow-wall-clock
                                    round_no, hash_group=hash_group)
            for repetition in pending
        }
        still_pending: List[int] = []
        pool_broken = False
        for repetition in pending:
            future = futures[repetition]
            try:
                result = future.result(timeout=self.task_timeout_s)
            except FutureTimeoutError:
                future.cancel()
                RUNLOG.timeouts += 1
                if metrics_on:
                    METRICS.inc("parallel.timeouts")
                failures[repetition] = (
                    f"timed out after {self.task_timeout_s}s")
                still_pending.append(repetition)
                pool_broken = True  # the hung worker occupies a slot
                continue
            except Exception as exc:
                # A crashed worker takes its fault tally with it; the
                # decision is deterministic, so account it parent-side.
                if FAULTS.enabled and FAULTS.would_fire(
                        "worker.crash", key=repetition, attempt=round_no):
                    FAULTS.record("worker.crash")
                failures[repetition] = f"worker pool broke: {exc}"
                still_pending.append(repetition)
                pool_broken = True
                continue
            (_rep, _seed, metrics, error, queue_wait, wall, snapshot,
             thash) = result
            if metrics_on:
                METRICS.observe("parallel.queue_wait_s", queue_wait)
                METRICS.observe("parallel.worker_wall_s", wall)
                if snapshot is not None:
                    METRICS.merge(snapshot)
            if thash is not None:
                TRACE_HASH.merge(thash)
            if error is None:
                completed[repetition] = metrics
            else:
                failures[repetition] = error
                still_pending.append(repetition)
        if pool_broken:
            pool.shutdown(wait=False, cancel_futures=True)
            pool = None
        return still_pending, pool

    def _serial_round(self, measure, seeds, pending, round_no,
                      completed, failures, metrics_on, hash_group=0):
        """In-process round (one worker, or unpicklable ``measure``).

        Runs in the parent: process-level sites (``worker.crash`` /
        ``worker.hang``) stay quiet and the parent metrics registry is
        never reset (the trace-hash recorder likewise accumulates
        in-parent, under the same ``g<group>/rep<n>`` context labels the
        worker path uses); ``task_timeout_s`` cannot interrupt
        in-process work and is ignored here.
        """
        still_pending: List[int] = []
        for repetition in pending:
            (_rep, _seed, metrics, error, _qw, wall, _snap,
             _thash) = _run_repetition(
                measure, repetition, seeds[repetition], 0.0, round_no,
                in_worker=False, snapshot_registry=False,
                hash_group=hash_group)
            if metrics_on:
                METRICS.observe("parallel.worker_wall_s", wall)
            if error is None:
                completed[repetition] = metrics
            else:
                failures[repetition] = error
                still_pending.append(repetition)
        return still_pending

    def _fold(self, seeds, completed, failures, metrics_on
              ) -> RepeatedResult:
        """Collect successes; degrade via ``min_reps`` or fail fast."""
        failed = [r for r in range(self.reps) if r not in completed]
        dropped: List[Dict[str, Any]] = []
        if failed:
            if self.min_reps is None or len(completed) < self.min_reps:
                first = failed[0]
                raise ExperimentError(
                    f"repetition {first} (seed {seeds[first]}) failed "
                    f"after {self.retries + 1} attempt(s) "
                    f"({len(completed)} of {self.reps} repetitions "
                    f"completed); reproduce with measure({seeds[first]}).\n"
                    f"Worker traceback:\n{failures[first]}"
                )
            dropped = [
                {"repetition": r, "seed": seeds[r],
                 "error": failures[r].strip().splitlines()[-1]
                 if failures[r].strip() else "unknown",
                 "traceback": failures[r]}
                for r in failed
            ]
            RUNLOG.dropped.extend(dropped)
            if metrics_on:
                METRICS.inc("parallel.dropped", len(dropped))
        result = collect_repetitions(
            (repetition, seeds[repetition], completed[repetition])
            for repetition in sorted(completed)
        )
        result.dropped = dropped
        return result
