"""Parallel repetition execution: fan independent seeded runs over cores.

The paper's methodology repeats every test >= 50 times; repetitions are
independent by construction (each builds a fresh simulated world from its
own :func:`derive_rep_seed` seed), which makes them the natural unit of
scale-out.  :class:`ParallelRepeater` submits one task per repetition to a
``ProcessPoolExecutor`` and folds the results back **in repetition
order**, so the resulting :class:`RepeatedResult` is bit-identical to the
serial :class:`repro.core.experiment.Repeater` — same seeds, same raw
value ordering, same ``summarize`` inputs.

Worker-count policy (first match wins):

* explicit ``jobs=`` argument;
* the activated :class:`repro.api.RunConfig` (the ``--jobs`` CLI flag
  lands here; the legacy ``REPRO_JOBS`` variable still works through
  ``RunConfig.from_env`` with a ``DeprecationWarning`` for library
  callers);
* ``os.cpu_count()``.

When the metrics registry is enabled each worker ships a snapshot of its
per-subsystem counters back with its result, and the parent merges them
— so engine/scheduler/hardware counters survive process fan-out — plus
per-worker wall time and queue wait observed from the parent side.

Fallbacks: ``jobs=1``, a single repetition, or a measurement function the
pickle module cannot serialise (e.g. a test-local closure) run serially
in-process.  Worker failures are re-raised as :class:`ExperimentError`
carrying the offending repetition index and derived seed plus the remote
traceback, so any failing repetition can be reproduced standalone with
``measure(seed)``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.experiment import (
    MeasureFn,
    Repeater,
    RepeatedResult,
    collect_repetitions,
)
from repro.errors import ExperimentError
from repro.obs.metrics import METRICS
from repro.simcore.rng import derive_rep_seed

#: Legacy environment variable for the default worker count (interpreted
#: only by :meth:`repro.api.RunConfig.from_env`).
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None,
                 env: Optional[Mapping[str, str]] = None) -> int:
    """Worker-count policy: explicit arg, then run config, then cores.

    With ``env=None`` the policy comes from the activated
    :class:`repro.api.RunConfig` when one is in force, else from the
    legacy ``REPRO_JOBS`` variable (with a ``DeprecationWarning``).  An
    explicit ``env`` mapping is interpreted directly — the testing hook.
    """
    from repro import api

    if jobs is not None:
        return api.RunConfig().resolve_jobs(jobs)
    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.fallback_config("jobs")
    return config.resolve_jobs()


def measure_is_picklable(measure: MeasureFn) -> bool:
    """Whether ``measure`` can cross a process boundary."""
    try:
        pickle.dumps(measure)
        return True
    except Exception:
        return False


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_repetition(measure: MeasureFn, repetition: int, seed: int,
                    submitted_at: float = 0.0
                    ) -> Tuple[int, int, Optional[Dict[str, float]],
                               Optional[str], float, float,
                               Optional[Dict[str, Any]]]:
    """Worker body: one repetition, exceptions captured as text.

    Returns ``(repetition, seed, metrics, error, queue_wait_s, wall_s,
    counter_snapshot)``.  A forked worker inherits an enabled metrics
    registry; it resets its (process-private) copy so the snapshot holds
    only this repetition's counters, which the parent merges back.
    """
    queue_wait = max(0.0, time.time() - submitted_at) if submitted_at else 0.0
    metrics_on = METRICS.enabled
    if metrics_on:
        METRICS.reset()
    started = time.perf_counter()
    try:
        metrics = measure(seed)
        # dict() preserves insertion order across the pickle boundary, so
        # the parent rebuilds `raw` exactly as the serial path would.
        result: Optional[Dict[str, float]] = dict(metrics)
        error = None
    except Exception:
        result, error = None, traceback.format_exc()
    wall = time.perf_counter() - started
    snapshot = METRICS.snapshot() if metrics_on else None
    return repetition, seed, result, error, queue_wait, wall, snapshot


def _run_shard(fn, index: int, task: Any
               ) -> Tuple[int, Any, Optional[str],
                          Optional[Dict[str, Any]]]:
    """Worker body for :func:`map_shards`: one shard, errors as text.

    Returns ``(index, result, error, counter_snapshot)``; same metrics
    snapshot/reset protocol as :func:`_run_repetition`.
    """
    metrics_on = METRICS.enabled
    if metrics_on:
        METRICS.reset()
    try:
        result, error = fn(task), None
    except Exception:
        result, error = None, traceback.format_exc()
    snapshot = METRICS.snapshot() if metrics_on else None
    return index, result, error, snapshot


def map_shards(fn, tasks, jobs: Optional[int] = None) -> list:
    """Map ``fn`` over ``tasks`` across workers, results in task order.

    The generic fan-out primitive behind fleet host building (and any
    future shard-shaped work): tasks must be picklable and independent,
    and because results come back in submission order the caller's merge
    is bit-identical to ``[fn(t) for t in tasks]`` at any worker count.
    Serial fallbacks (one worker, one task, unpicklable ``fn``) run
    in-process; worker failures re-raise as :class:`ExperimentError`
    naming the shard index with the remote traceback attached.
    """
    tasks = list(tasks)
    workers = min(resolve_jobs(jobs), len(tasks)) if tasks else 0
    if workers <= 1 or not measure_is_picklable(fn):
        return [fn(task) for task in tasks]
    metrics_on = METRICS.enabled
    gathered = []
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=_pool_context()) as pool:
        futures = [pool.submit(_run_shard, fn, index, task)
                   for index, task in enumerate(tasks)]
        for index, future in enumerate(futures):
            try:
                gathered.append(future.result())
            except Exception as exc:
                raise ExperimentError(
                    f"shard {index} broke the worker pool: {exc}"
                ) from exc
    for index, _result, error, _snapshot in gathered:
        if error is not None:
            raise ExperimentError(
                f"shard {index} failed in a worker.\n"
                f"Worker traceback:\n{error}"
            )
    if metrics_on:
        METRICS.inc("parallel.shards", len(gathered))
        METRICS.gauge_max("parallel.workers", workers)
        for _index, _result, _error, snapshot in gathered:
            if snapshot is not None:
                METRICS.merge(snapshot)
    return [result for _index, result, _error, _snapshot in gathered]


class ParallelRepeater:
    """Drop-in :class:`Repeater` that spreads repetitions over processes."""

    def __init__(self, base_seed: int = 0, reps: int = 5,
                 jobs: Optional[int] = None):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps
        self.jobs = resolve_jobs(jobs)

    def run(self, measure: MeasureFn) -> RepeatedResult:
        workers = min(self.jobs, self.reps)
        if workers <= 1 or not measure_is_picklable(measure):
            return Repeater(self.base_seed, self.reps).run(measure)
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        results = []
        metrics_on = METRICS.enabled
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            futures = [
                pool.submit(_run_repetition, measure, repetition, seed,
                            time.time())
                for repetition, seed in enumerate(seeds)
            ]
            # Collect in repetition order; the lowest failing index wins,
            # matching the serial path's first-failure semantics.
            for repetition, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    raise ExperimentError(
                        f"repetition {repetition} "
                        f"(seed {seeds[repetition]}) broke the worker "
                        f"pool: {exc}"
                    ) from exc
        for repetition, seed, _metrics, error, *_rest in results:
            if error is not None:
                raise ExperimentError(
                    f"repetition {repetition} (seed {seed}) failed in a "
                    f"worker; reproduce with measure({seed}).\n"
                    f"Worker traceback:\n{error}"
                )
        if metrics_on:
            METRICS.inc("parallel.repetitions", len(results))
            METRICS.gauge_max("parallel.workers", workers)
            for _rep, _seed, _m, _err, queue_wait, wall, snapshot in results:
                METRICS.observe("parallel.queue_wait_s", queue_wait)
                METRICS.observe("parallel.worker_wall_s", wall)
                if snapshot is not None:
                    METRICS.merge(snapshot)
        return collect_repetitions(
            (repetition, seed, metrics)
            for repetition, seed, metrics, _error, *_timing in results
        )
