"""Parallel repetition execution: fan independent seeded runs over cores.

The paper's methodology repeats every test >= 50 times; repetitions are
independent by construction (each builds a fresh simulated world from its
own :func:`derive_rep_seed` seed), which makes them the natural unit of
scale-out.  :class:`ParallelRepeater` submits one task per repetition to a
``ProcessPoolExecutor`` and folds the results back **in repetition
order**, so the resulting :class:`RepeatedResult` is bit-identical to the
serial :class:`repro.core.experiment.Repeater` — same seeds, same raw
value ordering, same ``summarize`` inputs.

Worker-count policy (first match wins):

* explicit ``jobs=`` argument;
* ``REPRO_JOBS=<n>`` environment variable (the ``--jobs`` CLI flag sets
  this);
* ``os.cpu_count()``.

Fallbacks: ``jobs=1``, a single repetition, or a measurement function the
pickle module cannot serialise (e.g. a test-local closure) run serially
in-process.  Worker failures are re-raised as :class:`ExperimentError`
carrying the offending repetition index and derived seed plus the remote
traceback, so any failing repetition can be reproduced standalone with
``measure(seed)``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Mapping, Optional, Tuple

from repro.core.experiment import (
    MeasureFn,
    Repeater,
    RepeatedResult,
    collect_repetitions,
)
from repro.errors import ExperimentError
from repro.simcore.rng import derive_rep_seed

#: Environment variable consulted for the default worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None,
                 env: Optional[Mapping[str, str]] = None) -> int:
    """Worker-count policy: explicit arg, then ``REPRO_JOBS``, then cores."""
    env = env if env is not None else os.environ
    if jobs is None:
        raw = env.get(JOBS_ENV)
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ExperimentError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    return jobs


def measure_is_picklable(measure: MeasureFn) -> bool:
    """Whether ``measure`` can cross a process boundary."""
    try:
        pickle.dumps(measure)
        return True
    except Exception:
        return False


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_repetition(measure: MeasureFn, repetition: int, seed: int
                    ) -> Tuple[int, int, Optional[Dict[str, float]],
                               Optional[str]]:
    """Worker body: one repetition, exceptions captured as text."""
    try:
        metrics = measure(seed)
        # dict() preserves insertion order across the pickle boundary, so
        # the parent rebuilds `raw` exactly as the serial path would.
        return repetition, seed, dict(metrics), None
    except Exception:
        return repetition, seed, None, traceback.format_exc()


class ParallelRepeater:
    """Drop-in :class:`Repeater` that spreads repetitions over processes."""

    def __init__(self, base_seed: int = 0, reps: int = 5,
                 jobs: Optional[int] = None):
        if reps < 1:
            raise ExperimentError(f"reps must be >= 1, got {reps}")
        self.base_seed = base_seed
        self.reps = reps
        self.jobs = resolve_jobs(jobs)

    def run(self, measure: MeasureFn) -> RepeatedResult:
        workers = min(self.jobs, self.reps)
        if workers <= 1 or not measure_is_picklable(measure):
            return Repeater(self.base_seed, self.reps).run(measure)
        seeds = [derive_rep_seed(self.base_seed, repetition)
                 for repetition in range(self.reps)]
        results = []
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            futures = [
                pool.submit(_run_repetition, measure, repetition, seed)
                for repetition, seed in enumerate(seeds)
            ]
            # Collect in repetition order; the lowest failing index wins,
            # matching the serial path's first-failure semantics.
            for repetition, future in enumerate(futures):
                try:
                    results.append(future.result())
                except Exception as exc:
                    raise ExperimentError(
                        f"repetition {repetition} "
                        f"(seed {seeds[repetition]}) broke the worker "
                        f"pool: {exc}"
                    ) from exc
        for repetition, seed, _metrics, error in results:
            if error is not None:
                raise ExperimentError(
                    f"repetition {repetition} (seed {seed}) failed in a "
                    f"worker; reproduce with measure({seed}).\n"
                    f"Worker traceback:\n{error}"
                )
        return collect_repetitions(
            (repetition, seed, metrics)
            for repetition, seed, metrics, _error in results
        )
