"""Testbed assembly: the paper's physical setup, reproducibly.

One testbed = one Core 2 Duo machine running either

* **native Ubuntu** (the guest-performance baseline), or
* **Windows XP** hosting a VM (every other configuration),

plus a second machine on the 100 Mbps LAN (the iperf server / BOINC
project host) and, for VM runs, the UDP time server on the host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.hardware.machine import Machine
from repro.hardware.specs import MachineSpec, core2duo_e6600
from repro.osmodel.kernel import Kernel, ubuntu_params, windows_xp_params
from repro.simcore.engine import Engine
from repro.simcore.rng import RngStreams
from repro.virt.profiles import HypervisorProfile, get_profile
from repro.virt.timeserver import GuestTimeClient, UdpTimeServer
from repro.virt.vm import VirtualMachine, VmConfig

#: The label used for bare-metal Ubuntu in every figure.
ENV_NATIVE = "native"


@dataclass
class Testbed:
    """A wired-up simulation world."""

    engine: Engine
    rng: RngStreams
    machine: Machine
    kernel: Kernel
    peer_machine: Optional[Machine] = None
    peer_kernel: Optional[Kernel] = None
    timeserver: Optional[UdpTimeServer] = None

    def run_to_completion(self, process) -> object:
        """Drive the engine until ``process`` finishes; return its value."""
        return self.engine.run_until_event(process)


def build_native_testbed(seed: int, spec: Optional[MachineSpec] = None,
                         with_peer: bool = True) -> Testbed:
    """Bare-metal Ubuntu on the paper's machine (baseline environment)."""
    engine = Engine()
    rng = RngStreams(seed)
    machine = Machine(engine, spec or core2duo_e6600("native"), rng.fork("hw"))
    kernel = Kernel(engine, machine, ubuntu_params(), name="native")
    testbed = Testbed(engine, rng, machine, kernel)
    if with_peer:
        _attach_peer(testbed)
    return testbed


def build_host_testbed(seed: int, spec: Optional[MachineSpec] = None,
                       with_peer: bool = True,
                       with_timeserver: bool = True) -> Testbed:
    """Windows XP host, ready to boot VMs."""
    engine = Engine()
    rng = RngStreams(seed)
    machine = Machine(engine, spec or core2duo_e6600("host"), rng.fork("hw"))
    kernel = Kernel(engine, machine, windows_xp_params(), name="host")
    testbed = Testbed(engine, rng, machine, kernel)
    if with_peer:
        _attach_peer(testbed)
    if with_timeserver:
        testbed.timeserver = UdpTimeServer(kernel)
    return testbed


def _attach_peer(testbed: Testbed) -> None:
    """Second machine on the LAN (iperf server / project server)."""
    peer_machine = Machine(
        testbed.engine, core2duo_e6600("lan-peer"), testbed.rng.fork("peer-hw")
    )
    testbed.machine.nic.connect(peer_machine.nic)
    peer_kernel = Kernel(testbed.engine, peer_machine, ubuntu_params(),
                         name="lan-peer")
    testbed.peer_machine = peer_machine
    testbed.peer_kernel = peer_kernel


def boot_vm(testbed: Testbed, profile: HypervisorProfile | str,
            config: Optional[VmConfig] = None) -> Generator:
    """Boot a VM on the testbed's host.  Generator; returns the VM."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    vm = VirtualMachine(testbed.kernel, profile, config)
    yield from vm.boot()
    return vm


def guest_time_client(testbed: Testbed, vm: VirtualMachine,
                      reply_port: int = 40371) -> GuestTimeClient:
    """A UDP time client inside the guest, pointed at the host's server."""
    if testbed.timeserver is None:
        raise ValueError("testbed has no UDP time server")
    return GuestTimeClient(vm.guest_net, vm.vcpu.thread, testbed.timeserver,
                           reply_port=reply_port)
