"""Content-addressed on-disk cache for seeded experiment results.

Every figure/report run is a pure function of (experiment name, the full
parameter/seed/repetition fingerprint, the package version, and the
package source itself) — simulations are deterministic per seed, so a
recomputation with an identical fingerprint must produce byte-identical
output.  The cache exploits that: keys are SHA-256 digests of a canonical
JSON encoding of the fingerprint, values are small JSON envelopes stored
one-per-file under the cache root.

Invalidation rules (any of these changes the key, so stale entries are
simply never read again):

* any experiment parameter, base seed, or the resolved repetition policy
  (``REPRO_REPS`` / ``REPRO_FULL`` / ``REPRO_FAST``);
* the package version;
* any ``.py`` source file inside the ``repro`` package (a source
  fingerprint is folded into every key, so editing the simulator never
  serves stale results).

Location: ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-ipps09``.
``REPRO_CACHE=0`` disables reads and writes; ``repro cache stats|clear``
inspect and empty the store.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pathlib
from typing import Any, Dict, Mapping, Optional

from repro import __version__
from repro.faults import FAULTS
from repro.obs.metrics import METRICS

log = logging.getLogger("repro.cache")

#: Legacy environment variable overriding the on-disk location
#: (interpreted only by :meth:`repro.api.RunConfig.from_env`).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Legacy environment variable toggling the cache ("0"/"false"/"off"
#: disable it); same interpretation rule.
CACHE_TOGGLE_ENV = "REPRO_CACHE"

_source_fingerprint: Optional[str] = None


def cache_enabled(default: bool = False,
                  env: Optional[Mapping[str, str]] = None) -> bool:
    """Resolve the cache toggle (unset -> ``default``).

    With ``env=None`` the toggle comes from the activated
    :class:`repro.api.RunConfig` when one is in force, else from the
    legacy ``REPRO_CACHE`` variable (with a ``DeprecationWarning`` for
    library callers).  An explicit ``env`` mapping is interpreted
    directly — the testing hook.
    """
    from repro import api

    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.fallback_config("cache")
    return config.use_cache(default)


def source_fingerprint() -> str:
    """Digest of every ``.py`` file in the repro package (cached).

    Folding this into cache keys makes invalidation automatic across code
    edits: results computed by different source trees never collide.
    """
    global _source_fingerprint
    if _source_fingerprint is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(hashlib.sha256(path.read_bytes()).digest())
        _source_fingerprint = digest.hexdigest()[:16]
    return _source_fingerprint


def default_cache_dir(env: Optional[Mapping[str, str]] = None) -> pathlib.Path:
    from repro import api

    if env is not None:
        config = api.RunConfig.from_env(env)
    else:
        config = api.active_config() or api.RunConfig.from_env()
    if config.cache_dir:
        return pathlib.Path(config.cache_dir)
    return pathlib.Path(os.path.expanduser("~")) / ".cache" / "repro-ipps09"


class ResultCache:
    """One-file-per-entry JSON store addressed by content fingerprint."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = pathlib.Path(root) if root is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- keys -----------------------------------------------------------

    def key(self, experiment: str, params: Mapping[str, Any]) -> str:
        """Content address for one seeded run of ``experiment``."""
        fingerprint = json.dumps(
            {
                "experiment": experiment,
                "params": params,
                "version": __version__,
                "source": source_fingerprint(),
            },
            sort_keys=True, default=repr,
        )
        return hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        """Existence probe that leaves the hit/miss counters and METRICS
        untouched (``repro campaign plan`` predicts cache outcomes with
        this without perturbing the stats a real run will report)."""
        return self._path(key).is_file()

    # -- read/write ------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The stored payload for ``key``, or None on a miss.

        An *absent* entry is an ordinary miss.  An entry that exists but
        cannot be read or parsed is **corruption**, not a miss: the file
        is quarantined to ``<key>.corrupt`` (so the evidence survives and
        the next read is a clean miss), counted separately
        (``cache.corrupt``), and logged at warning.
        """
        path = self._path(key)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError(f"cache envelope is {type(envelope).__name__},"
                                 " not an object")
        except FileNotFoundError:
            self.misses += 1
            if METRICS.enabled:
                METRICS.inc("cache.misses")
            return None
        except (OSError, ValueError) as exc:
            self._quarantine(path, key, exc)
            return None
        self.hits += 1
        if METRICS.enabled:
            METRICS.inc("cache.hits")
        log.info("cache hit: %s (%s)", envelope.get("experiment", "?"),
                 key[:12])
        return envelope.get("payload")

    def _quarantine(self, path: pathlib.Path, key: str,
                    exc: Exception) -> None:
        """Move an unreadable entry aside and count it distinctly."""
        self.corrupt += 1
        if METRICS.enabled:
            METRICS.inc("cache.corrupt")
        quarantined = path.with_suffix(".corrupt")
        try:
            path.replace(quarantined)
            where = str(quarantined)
        except OSError:
            where = str(path)  # leave it; the next read re-reports
        log.warning("cache entry %s is corrupt (%s); quarantined to %s",
                    key[:12], exc, where)

    def put(self, key: str, payload: Any, experiment: str = "",
            params: Optional[Mapping[str, Any]] = None) -> None:
        """Store ``payload`` (atomic rename; concurrent writers race safely)."""
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "experiment": experiment,
            "params": params,
            "version": __version__,
            "payload": payload,
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            body = json.dumps(envelope, default=repr)
            if FAULTS.enabled and FAULTS.fires("cache.corrupt", key=key):
                body = body[: max(1, len(body) // 2)]  # truncated write
            tmp.write_text(body, encoding="utf-8")
            tmp.replace(path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        if METRICS.enabled:
            METRICS.inc("cache.stores")
        log.info("cache store: %s (%s)", experiment or "?", key[:12])

    # -- maintenance -----------------------------------------------------

    def _entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def _tmp_files(self):
        if not self.root.is_dir():
            return []
        return sorted(p for p in self.root.iterdir()
                      if ".tmp." in p.name)

    def _corrupt_files(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.corrupt"))

    def stats(self) -> Dict[str, Any]:
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "corrupt_files": len(self._corrupt_files()),
            "tmp_files": len(self._tmp_files()),
        }

    def clear(self) -> int:
        """Delete every entry (plus quarantined/orphaned files); returns
        the number of cache entries removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self._tmp_files() + self._corrupt_files():
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def sweep(self) -> int:
        """Remove orphaned ``.tmp.<pid>`` files from dead writers.

        A writer that dies between write and rename leaks its temp file;
        a temp file whose pid is no longer alive (or unparsable) is an
        orphan.  Live writers' in-flight temps are left alone.  Returns
        the number of files removed.
        """
        removed = 0
        for path in self._tmp_files():
            suffix = path.name.rsplit(".tmp.", 1)[-1]
            try:
                pid = int(suffix)
            except ValueError:
                pid = None
            if pid is not None and pid != os.getpid():
                try:
                    os.kill(pid, 0)  # probe only: signal 0 delivers nothing
                    continue  # writer still alive; leave its temp file
                except ProcessLookupError:
                    pass
                except OSError:
                    continue  # e.g. EPERM: someone else's live process
            elif pid == os.getpid():
                continue  # our own in-flight write
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
