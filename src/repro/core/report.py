"""Report rendering: ASCII bar charts, markdown tables, EXPERIMENTS text."""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

from repro.core.figures import FigureData

_BAR_WIDTH = 42


def ascii_bar_chart(fig: FigureData) -> str:
    """Render a figure as a labelled horizontal bar chart."""
    rows = fig.rows()
    if not rows:
        return f"{fig.fig_id}: (no data)"
    peak = max(abs(value) for _, value, _, _ in rows) or 1.0
    label_width = max(len(label) for label, *_ in rows)
    lines = [f"{fig.fig_id.upper()} — {fig.title}", f"  [{fig.unit}]"]
    for label, value, ci, paper in rows:
        bar = "#" * max(1, round(abs(value) / peak * _BAR_WIDTH))
        paper_txt = f"  paper={paper:g}" if paper is not None else ""
        ci_txt = f" ±{ci:.2g}" if ci else ""
        lines.append(
            f"  {label:<{label_width}}  {bar:<{_BAR_WIDTH}} "
            f"{value:8.3f}{ci_txt}{paper_txt}"
        )
    if fig.notes:
        lines.append(f"  note: {fig.notes}")
    return "\n".join(lines)


def markdown_table(fig: FigureData) -> str:
    """Render a figure as a paper-vs-measured markdown table."""
    lines = [
        f"### {fig.fig_id.upper()} — {fig.title}",
        "",
        f"Unit: {fig.unit}",
        "",
        "| environment | measured | 95% CI | paper | rel. error |",
        "|---|---|---|---|---|",
    ]
    for label, value, ci, paper in fig.rows():
        if paper is not None and paper != 0:
            err = f"{abs(value - paper) / abs(paper) * 100:.1f}%"
            paper_txt = f"{paper:g}"
        else:
            err = "—"
            paper_txt = "—"
        ci_txt = f"±{ci:.3g}" if ci else "—"
        lines.append(f"| {label} | {value:.3f} | {ci_txt} | {paper_txt} | {err} |")
    if fig.notes:
        lines.extend(["", f"*{fig.notes}*"])
    lines.append("")
    return "\n".join(lines)


def figure_to_json(fig: FigureData) -> str:
    payload = {
        "fig_id": fig.fig_id,
        "title": fig.title,
        "unit": fig.unit,
        "notes": fig.notes,
        "series": {
            label: {"value": point.value, "ci95": point.ci95}
            for label, point in fig.series.items()
        },
        "paper": fig.paper,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def experiments_markdown(figures: Iterable[FigureData],
                         header: Optional[str] = None) -> str:
    """A full EXPERIMENTS.md-style report for a set of figures."""
    lines: List[str] = []
    if header:
        lines.extend([header, ""])
    for fig in figures:
        lines.append(markdown_table(fig))
    return "\n".join(lines)
