"""Multi-VM host experiments (the regime §4.2.1 could not express).

The scenario family: N idle-priority VMs on the paper's dual-core host,
every guest computing Einstein@home, the host memory subsystem
(:mod:`repro.virt.memory`) ballooning and reclaiming under a configured
overcommit ratio — while the host optionally runs the 7z owner
benchmark, exactly like the Figure 7/8 intrusiveness runs.

Measures are picklable module-level classes (the
:func:`repro.core.experiment.repeat` contract), so every multi-VM figure
parallelises over the persistent worker pool bit-identically to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.experiment import repeat
from repro.core.stats import Summary
from repro.core.testbed import build_host_testbed
from repro.errors import ExperimentError
from repro.virt.memory import MemoryModelParams, MultiVmHost
from repro.workloads.einstein import EinsteinTask, EinsteinWorkunit
from repro.workloads.sevenzip import SevenZipHostBenchmark


@dataclass(frozen=True)
class MultiVmConfig:
    """One multi-VM host configuration."""

    n_vms: int = 2                   #: concurrent VMs (0 = no-VM control)
    overcommit_ratio: float = 1.0    #: configured guest RAM / physical RAM
    duration_s: float = 8.0          #: measurement horizon
    host_threads: int = 1            #: host 7z threads (0 = idle host)
    profile: str = "virtualbox"      #: hypervisor profile name

    def __post_init__(self):
        if self.n_vms < 0:
            raise ExperimentError(
                f"n_vms must be >= 0, got {self.n_vms!r}")
        if self.overcommit_ratio <= 0:
            raise ExperimentError(
                f"overcommit_ratio must be positive, "
                f"got {self.overcommit_ratio!r}")
        if self.duration_s <= 0:
            raise ExperimentError(
                f"duration_s must be positive, got {self.duration_s!r}")
        if self.host_threads < 0:
            raise ExperimentError(
                f"host_threads must be >= 0, got {self.host_threads!r}")


def run_multivm_impact(config: MultiVmConfig, seed: int
                       ) -> Dict[str, float]:
    """One repetition: boot N guests + Einstein, measure host and memory.

    Returns host 7z metrics (zeros on an idle host), aggregate guest
    throughput, and the memory subsystem's scalar observations.
    """
    testbed = build_host_testbed(seed, with_peer=False,
                                 with_timeserver=False)
    host: Optional[MultiVmHost] = None
    if config.n_vms > 0:
        host = MultiVmHost(
            testbed.kernel, testbed.rng.fork("multivm"),
            n_vms=config.n_vms,
            overcommit_ratio=config.overcommit_ratio,
            profile=config.profile, fault_key=str(seed))

        def driver(host=host):
            yield from host.boot()
            for vm in host.vms:
                ctx = vm.guest_context()
                task = EinsteinTask(
                    EinsteinWorkunit(n_templates=10 ** 9),
                    checkpoint_path=f"/boinc/{vm.name}.ckpt")
                testbed.engine.process(task.run_forever(ctx),
                                       name=f"einstein-{vm.name}")

        testbed.engine.process(driver(), name="multivm-driver")
    if config.host_threads > 0:
        bench = SevenZipHostBenchmark(
            testbed.kernel, threads=config.host_threads,
            duration_s=config.duration_s, rng=testbed.rng.fork("7z"))
        result = testbed.run_to_completion(
            testbed.engine.process(bench.run(), name="7z-host"))
        metrics = {
            "usage_pct": result.metric("usage_pct"),
            "mips": result.metric("mips"),
        }
    else:
        testbed.engine.run(until=config.duration_s)
        metrics = {"usage_pct": 0.0, "mips": 0.0}
    if host is not None:
        metrics["guest_ginstr"] = host.guest_instructions / 1e9
        metrics.update(host.observations())
        host.shutdown()
    else:
        metrics["guest_ginstr"] = 0.0
        metrics.update({"committed_peak_mb": 0.0, "squeezed_peak_mb": 0.0,
                        "reclaim_pages": 0.0, "balloon_moved_mb": 0.0,
                        "spikes_injected": 0.0})
    return metrics


class MultiVmImpactMeasure:
    """Picklable measure fn for one multi-VM configuration."""

    __slots__ = ("config",)

    def __init__(self, config: MultiVmConfig):
        self.config = config

    def __call__(self, seed: int) -> Mapping[str, float]:
        return run_multivm_impact(self.config, seed)


def multivm_impact_experiment(configs, base_seed: int = 0,
                              default_reps: int = 3,
                              jobs: Optional[int] = None
                              ) -> Dict[MultiVmConfig, Dict[str, Summary]]:
    """Repeat every configuration; returns ``{config: {metric: Summary}}``."""
    out: Dict[MultiVmConfig, Dict[str, Summary]] = {}
    for config in configs:
        repeated = repeat(MultiVmImpactMeasure(config),
                          base_seed=base_seed, default_reps=default_reps,
                          jobs=jobs)
        out[config] = repeated.metrics
    return out


# Re-exported so figure/campaign code can tune the model without
# importing the virt layer directly.
__all__ = [
    "MemoryModelParams",
    "MultiVmConfig",
    "MultiVmImpactMeasure",
    "multivm_impact_experiment",
    "run_multivm_impact",
]
