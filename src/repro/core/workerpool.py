"""Persistent worker pools and the versioned worker-result wire format.

Before this module existed every ``ParallelRepeater.run`` /
``map_shards`` call built a fresh ``ProcessPoolExecutor`` and tore it
down again, so ``--jobs N`` paid fork + interpreter warm-up + measure
pickling on *every* round of *every* run — which is why the recorded
scaling trajectory showed parallel runs at 0.63–0.97x of serial.  The
two halves here fix that:

:class:`WorkerPool` (and the module-level :func:`get_pool` registry)
    One long-lived ``ProcessPoolExecutor`` per worker count, created
    lazily on first dispatch and **reused** across repetitions, retry
    rounds, figures in a sweep and fleet shards.  Forked workers
    pre-import the whole tree (fork inherits the parent's warm
    interpreter), so a task dispatch costs one pickle round-trip, not a
    process start.  A broken or hung pool is :meth:`~WorkerPool.
    invalidate`-d — shut down without waiting — and rebuilt lazily on
    the next dispatch, preserving the resilient round semantics.

``TaskSpec`` / :class:`WorkerResult`
    Because workers now outlive the run that forked them, they can no
    longer rely on *inherited* process-global state (metrics registry,
    trace-hash recorder, fault plan, activated run config).  Every task
    therefore carries a compact spec with an explicit context
    (:func:`build_task_context`), which the worker re-arms from before
    running the repetition/shard body (:func:`_execute_task`).  Results
    come back as a versioned :data:`WORKER_RESULT_SCHEMA` record whose
    bulk payload — raw metric values, METRICS snapshot, TRACE_HASH
    snapshot, fault RUNLOG entries — travels out-of-band through
    ``multiprocessing.shared_memory`` (or a spill file above
    :data:`SPILL_MIN_BYTES`) instead of the result pipe; only payloads
    under :data:`INLINE_MAX_BYTES` ride inline.

Shared-memory ownership and cleanup rules
-----------------------------------------
* the **worker** creates a segment, copies the pickled payload in,
  closes its mapping and ships only the segment *name* plus a size and
  SHA-256 digest;
* the **parent** attaches on receipt, copies the bytes out, then closes
  **and unlinks** the segment in a ``finally`` — decode always consumes
  the transport, even when verification fails;
* a size or digest mismatch (truncated/corrupt payload) raises
  :class:`WorkerResultError` — the task is *quarantined*: treated as a
  task failure (and therefore retried on the resilient path), never
  silently folded in;
* results abandoned mid-flight (timed-out round, broken pool) are
  tracked via :meth:`WorkerPool.abandon` and their transports released
  on the next sweep (dispatch, invalidation or interpreter exit), so
  hung workers cannot leak ``/dev/shm`` segments indefinitely.

Nothing here touches experiment RNG streams; the spec/result plumbing
is observability-and-transport only, which is what keeps ``--jobs N``
byte-identical to serial.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import tempfile
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Dict, List, Mapping, Optional

from repro.audit.tracehash import TRACE_HASH
from repro.errors import ExperimentError
from repro.faults import FAULTS, RUNLOG, FaultPlan
from repro.obs.metrics import METRICS

#: Versioned wire-format identifier for one worker task's result.
WORKER_RESULT_SCHEMA = "repro-worker-result/1"

#: Payloads at or under this many pickled bytes ride inline in the
#: result pipe; larger ones go out-of-band (shared memory or spill).
INLINE_MAX_BYTES = 64 * 1024

#: Payloads at or over this many bytes prefer a spill file outright —
#: ``/dev/shm`` is typically RAM-backed and half of physical memory, so
#: very large snapshots must not camp there.
SPILL_MIN_BYTES = 32 * 1024 * 1024


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; in affinity-limited
    containers (CI runners, cgroup-pinned jobs) the schedulable set is
    smaller, and sizing a pool past it only adds contention — this is
    the worker-count policy's default, with ``cpu_count`` as the
    fallback on platforms without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, inherits the warm interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# ---------------------------------------------------------------------------
# Payload transport (inline / shared memory / spill file)
# ---------------------------------------------------------------------------

class WorkerResultError(ExperimentError):
    """A worker result that cannot be trusted: unknown schema version,
    vanished transport, or a truncated/corrupt (quarantined) payload."""


def encode_payload(obj: Any, inline_max: Optional[int] = None,
                   transport: Optional[str] = None) -> Dict[str, Any]:
    """Pickle ``obj`` and pick a transport for the bytes.

    Returns the payload descriptor shipped inside the wire record:
    always ``format``/``size``/``sha256`` plus transport-specific
    fields.  ``transport`` forces a specific channel (tests exercise
    each path explicitly); shared-memory failure falls back to a spill
    file so a full ``/dev/shm`` degrades instead of crashing the run.
    """
    data = pickle.dumps(obj)
    meta: Dict[str, Any] = {
        "format": "pickle",
        "size": len(data),
        "sha256": hashlib.sha256(data).hexdigest(),
    }
    limit = INLINE_MAX_BYTES if inline_max is None else inline_max
    mode = transport
    if mode is None:
        if len(data) <= limit:
            mode = "inline"
        elif len(data) >= SPILL_MIN_BYTES:
            mode = "spill"
        else:
            mode = "shm"
    if mode == "inline":
        meta["transport"] = "inline"
        meta["data"] = data
        return meta
    if mode == "shm":
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True,
                                                 size=max(1, len(data)))
            try:
                segment.buf[:len(data)] = data
            finally:
                segment.close()
            # Ownership transfers to the parent (decode/discard unlink
            # the segment); drop it from *this* process's resource
            # tracker or every worker would report "leaked" segments the
            # parent already consumed when the pool shuts down.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    getattr(segment, "_name", segment.name),
                    "shared_memory")
            except Exception:
                pass
            meta["transport"] = "shm"
            meta["name"] = segment.name
            return meta
        except (ImportError, OSError, ValueError):
            mode = "spill"  # degrade to a file rather than fail the task
    if mode != "spill":
        raise WorkerResultError(f"unknown payload transport {mode!r}")
    fd, path = tempfile.mkstemp(prefix="repro-worker-", suffix=".bin")
    with os.fdopen(fd, "wb") as handle:
        handle.write(data)
    meta["transport"] = "spill"
    meta["path"] = path
    return meta


def discard_payload(meta: Mapping[str, Any]) -> None:
    """Release a payload's transport without decoding it (best effort).

    Used when a result is abandoned — a salvage pass after a broken
    pool, or a timed-out round whose stragglers finish later — so
    shared-memory segments and spill files never outlive their run.
    """
    transport = meta.get("transport")
    if transport == "shm":
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(name=meta["name"])
            segment.close()
            segment.unlink()
        except (ImportError, OSError, FileNotFoundError):
            pass
    elif transport == "spill":
        try:
            os.unlink(meta["path"])
        except OSError:
            pass


def decode_payload(meta: Mapping[str, Any]) -> Any:
    """Read, verify and unpickle one payload; always consumes the
    transport (shared memory unlinked, spill file deleted) even when
    verification fails and the result is quarantined."""
    transport = meta.get("transport")
    if transport == "inline":
        data = meta.get("data", b"")
    elif transport == "shm":
        from multiprocessing import shared_memory

        try:
            segment = shared_memory.SharedMemory(name=meta["name"])
        except (OSError, FileNotFoundError) as exc:
            raise WorkerResultError(
                f"worker result payload segment {meta.get('name')!r} "
                f"vanished before the parent could read it: {exc}"
            ) from exc
        try:
            data = bytes(segment.buf[:int(meta.get("size", 0))])
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
    elif transport == "spill":
        path = meta.get("path", "")
        try:
            with open(path, "rb") as handle:
                data = handle.read(int(meta.get("size", 0)))
        except OSError as exc:
            raise WorkerResultError(
                f"worker result spill file {path!r} vanished before the "
                f"parent could read it: {exc}"
            ) from exc
        finally:
            try:
                os.unlink(path)
            except OSError:
                pass
    else:
        raise WorkerResultError(
            f"unknown worker result payload transport {transport!r}")
    size = int(meta.get("size", -1))
    if len(data) != size:
        raise WorkerResultError(
            f"quarantined truncated worker result payload: expected "
            f"{size} bytes via {transport}, read {len(data)}")
    if hashlib.sha256(data).hexdigest() != meta.get("sha256"):
        raise WorkerResultError(
            "quarantined corrupt worker result payload: SHA-256 digest "
            f"mismatch over {size} bytes via {transport}")
    try:
        return pickle.loads(data)
    except Exception as exc:
        raise WorkerResultError(
            f"quarantined undecodable worker result payload: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# WorkerResult: the versioned record one task returns
# ---------------------------------------------------------------------------

class WorkerResult:
    """One task's outcome plus its folded-back observability payloads.

    ``values`` is the measure's metric dict (repetitions) or the shard
    function's return value; ``metrics``/``trace_hash``/``runlog`` are
    the worker-side registry snapshots the parent merges, exactly as
    the old positional 8-tuple carried them.
    """

    __slots__ = ("kind", "index", "seed", "error", "queue_wait_s",
                 "wall_s", "pid", "values", "metrics", "trace_hash",
                 "runlog")

    def __init__(self, kind: str, index: int, seed: Optional[int] = None,
                 error: Optional[str] = None, queue_wait_s: float = 0.0,
                 wall_s: float = 0.0, pid: int = 0, values: Any = None,
                 metrics: Optional[Dict[str, Any]] = None,
                 trace_hash: Optional[Dict[str, Any]] = None,
                 runlog: Optional[Dict[str, Any]] = None):
        self.kind = kind
        self.index = index
        self.seed = seed
        self.error = error
        self.queue_wait_s = queue_wait_s
        self.wall_s = wall_s
        self.pid = pid
        self.values = values
        self.metrics = metrics
        self.trace_hash = trace_hash
        self.runlog = runlog

    def to_wire(self, inline_max: Optional[int] = None,
                transport: Optional[str] = None) -> Dict[str, Any]:
        """Encode for the result pipe; bulk fields go via the payload
        transport, scalars stay inline."""
        payload = {"values": self.values, "metrics": self.metrics,
                   "trace_hash": self.trace_hash, "runlog": self.runlog}
        return {
            "schema": WORKER_RESULT_SCHEMA,
            "kind": self.kind,
            "index": self.index,
            "seed": self.seed,
            "error": self.error,
            "queue_wait_s": self.queue_wait_s,
            "wall_s": self.wall_s,
            "pid": self.pid,
            "payload": encode_payload(payload, inline_max, transport),
        }

    @classmethod
    def from_wire(cls, wire: Any) -> "WorkerResult":
        """Decode and verify one wire record.

        Raises :class:`WorkerResultError` on an unknown schema version
        or a quarantined payload; the payload transport is consumed
        either way.
        """
        if not isinstance(wire, Mapping):
            raise WorkerResultError(
                f"malformed worker result: expected a mapping, got "
                f"{type(wire).__name__}")
        schema = wire.get("schema")
        if schema != WORKER_RESULT_SCHEMA:
            discard_payload(wire.get("payload") or {})
            raise WorkerResultError(
                f"unsupported worker result schema {schema!r}; this "
                f"parent speaks {WORKER_RESULT_SCHEMA!r}")
        payload = decode_payload(wire.get("payload") or {})
        if not isinstance(payload, Mapping):
            raise WorkerResultError(
                "quarantined worker result payload: decoded to "
                f"{type(payload).__name__}, expected a mapping")
        return cls(
            kind=wire.get("kind", ""),
            index=int(wire.get("index", -1)),
            seed=wire.get("seed"),
            error=wire.get("error"),
            queue_wait_s=float(wire.get("queue_wait_s", 0.0)),
            wall_s=float(wire.get("wall_s", 0.0)),
            pid=int(wire.get("pid", 0)),
            values=payload.get("values"),
            metrics=payload.get("metrics"),
            trace_hash=payload.get("trace_hash"),
            runlog=payload.get("runlog"),
        )


# ---------------------------------------------------------------------------
# Task context: the state a persistent worker must re-arm per task
# ---------------------------------------------------------------------------

def build_task_context() -> Dict[str, Any]:
    """Capture the parent's task-relevant process globals.

    A freshly-forked worker used to inherit all of this implicitly; a
    persistent worker forked once and reused forever must be told per
    task.  Everything here is tiny and deterministic: enablement flags,
    the trace-hash window/capture target, the fault plan's wire form
    and the activated run config.
    """
    from repro import api

    config = api.active_config()
    plan = FAULTS.plan if FAULTS.enabled else None
    capture = TRACE_HASH.capture
    return {
        "metrics": METRICS.enabled,
        "trace_hash": TRACE_HASH.enabled,
        "window_s": TRACE_HASH.window_s,
        "capture": list(capture) if capture is not None else None,
        "fault": plan.to_dict() if plan is not None else None,
        "config": config.to_dict() if config is not None else None,
    }


#: Fault-plan continuity: the run token of the plan currently armed in
#: *this worker*, so per-(site, key) attempt counters persist across
#: rounds of one run (as they did when workers lived exactly one run)
#: but reset between runs.
_ARMED_RUN_TOKEN: Optional[int] = None


def _apply_task_context(context: Mapping[str, Any],
                        run_token: int) -> None:
    """Re-arm this worker's process globals from a task's context."""
    global _ARMED_RUN_TOKEN
    from repro import api

    if context.get("metrics"):
        METRICS.enable(reset=True)
    else:
        METRICS.disable()
    if context.get("trace_hash"):
        TRACE_HASH.enable(window_s=context.get("window_s"), reset=True)
        capture = context.get("capture")
        TRACE_HASH.capture = tuple(capture) if capture else None
    else:
        TRACE_HASH.disable()
    RUNLOG.clear()
    fault = context.get("fault")
    if fault is None:
        FAULTS.deactivate()
        _ARMED_RUN_TOKEN = None
    elif _ARMED_RUN_TOKEN != run_token or FAULTS.plan is None:
        FAULTS.activate(FaultPlan.from_dict(fault))
        _ARMED_RUN_TOKEN = run_token
    raw_config = context.get("config")
    api._ACTIVE = (api.RunConfig.from_dict(raw_config)
                   if raw_config is not None else None)


def _runlog_wire() -> Optional[Dict[str, Any]]:
    """This worker's RUNLOG snapshot, or ``None`` when nothing happened
    (the common case — keeps the payload minimal)."""
    snap = RUNLOG.snapshot()
    if (snap.get("retries") or snap.get("timeouts") or snap.get("dropped")
            or snap.get("injected")):
        return snap
    return None


def _execute_task(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """Worker entry point: re-arm from the spec, run the body, encode.

    ``spec`` fields: ``kind`` ("rep" | "shard"), ``index``, ``seed``
    (reps), ``fn_blob`` (the pickled measure/shard function — unpickled
    fresh per task so a stateful measure never leaks state between
    repetitions), ``task_blob`` (shards), ``attempt``, ``submitted_at``,
    ``hash_group``, ``run_token`` and ``context``.
    """
    # Imported lazily: repro.core.parallel imports this module at top
    # level, so the reverse edge must stay out of import time.
    from repro.core import parallel as _parallel

    _apply_task_context(spec["context"], spec["run_token"])
    fn = pickle.loads(spec["fn_blob"])
    if spec["kind"] == "rep":
        (repetition, seed, values, error, queue_wait, wall, snapshot,
         thash) = _parallel._run_repetition(
            fn, spec["index"], spec["seed"], spec["submitted_at"],
            spec["attempt"], hash_group=spec["hash_group"])
        result = WorkerResult(
            kind="rep", index=repetition, seed=seed, error=error,
            queue_wait_s=queue_wait, wall_s=wall, pid=os.getpid(),
            values=values, metrics=snapshot, trace_hash=thash,
            runlog=_runlog_wire())
    else:
        task = pickle.loads(spec["task_blob"])
        index, values, error, snapshot = _parallel._run_shard(
            fn, spec["index"], task, spec["attempt"])
        result = WorkerResult(
            kind="shard", index=index, error=error, pid=os.getpid(),
            values=values, metrics=snapshot, runlog=_runlog_wire())
    return result.to_wire()


# ---------------------------------------------------------------------------
# The pools themselves
# ---------------------------------------------------------------------------

class WorkerPool:
    """A lazily-built, invalidate-and-rebuild ``ProcessPoolExecutor``.

    The executor is created on first :meth:`submit` and then *reused*
    by every dispatch at this worker count until something breaks it —
    a crashed worker or a tripped task timeout — at which point
    :meth:`invalidate` shuts it down without waiting and the next
    dispatch forks a fresh one.  ``generation`` counts executor builds
    (benchmarks and tests read it to prove reuse).
    """

    __slots__ = ("workers", "generation", "_executor", "_abandoned")

    def __init__(self, workers: int):
        self.workers = int(workers)
        self.generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Futures whose results nobody will read (timed-out rounds);
        #: swept for transport cleanup once they complete.
        self._abandoned: List[Future] = []

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context())
            self.generation += 1
            if METRICS.enabled:
                METRICS.inc("parallel.pool_created")
        elif METRICS.enabled:
            METRICS.inc("parallel.pool_reused")
        return self._executor

    def submit(self, spec: Mapping[str, Any]) -> Future:
        self._sweep_abandoned()
        return self.executor().submit(_execute_task, spec)

    def abandon(self, future: Future) -> None:
        """Mark a future whose result will never be consumed, so its
        payload transport is released when it eventually completes."""
        self._abandoned.append(future)

    def _sweep_abandoned(self) -> None:
        remaining: List[Future] = []
        for future in self._abandoned:
            if future.done():
                if not future.cancelled() and future.exception() is None:
                    wire = future.result()
                    if isinstance(wire, Mapping):
                        discard_payload(wire.get("payload") or {})
            else:
                remaining.append(future)
        self._abandoned = remaining

    def invalidate(self) -> None:
        """Tear the executor down (non-blocking); rebuilt lazily."""
        self._sweep_abandoned()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            if METRICS.enabled:
                METRICS.inc("parallel.pool_rebuilt")

    def shutdown(self) -> None:
        self._sweep_abandoned()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None


#: Long-lived pools keyed by worker count.  Distinct ``--jobs`` values
#: get distinct pools so a 2-job dispatch can never run 4 wide.
_POOLS: Dict[int, WorkerPool] = {}

#: Monotone per-dispatch token (fault-plan continuity across rounds).
_RUN_TOKEN = 0


def next_run_token() -> int:
    """A fresh token identifying one repeater/map_shards invocation."""
    global _RUN_TOKEN
    _RUN_TOKEN += 1
    return _RUN_TOKEN


def get_pool(workers: int) -> WorkerPool:
    """The persistent pool for ``workers``, created on first use."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def warm_pool(workers: int) -> WorkerPool:
    """Fork the persistent pool for ``workers`` now instead of lazily.

    Batch drivers (the campaign scheduler) call this once before their
    first point so every point — not just the ones after the first
    parallel dispatch — sees warm workers.  Idempotent: an already-built
    pool is simply returned.
    """
    pool = get_pool(workers)
    pool.executor()
    return pool


def pool_generations() -> Dict[int, int]:
    """Worker count -> executor builds so far (reuse diagnostics)."""
    return {workers: pool.generation
            for workers, pool in sorted(_POOLS.items())}


def shutdown_pools() -> None:
    """Shut every persistent pool down (CLI exit, benchmarks, atexit).

    Safe to call repeatedly; the next dispatch after a shutdown simply
    rebuilds its pool.
    """
    for pool in _POOLS.values():
        pool.shutdown()


atexit.register(shutdown_pools)
