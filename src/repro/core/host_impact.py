"""Experiment 2: impact on the host OS (paper §4.2, Figures 5-8).

The scenario: a VM on the Windows XP host runs the BOINC client attached
to Einstein@home at 100% virtual CPU while the host runs a benchmark —
NBench (single-threaded, Figures 5-6) or 7z with one or two threads
(Figures 7-8).  Control runs omit the VM ("no VM" bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.experiment import repeat
from repro.core.stats import Summary
from repro.core.testbed import Testbed, boot_vm, build_host_testbed
from repro.errors import ExperimentError
from repro.osmodel.threads import PRIORITY_IDLE, PRIORITY_NORMAL
from repro.virt.vm import VmConfig
from repro.workloads.einstein import EinsteinTask, EinsteinWorkunit
from repro.workloads.nbench import IndexGroup, NBenchHarness
from repro.workloads.sevenzip import SevenZipHostBenchmark

#: Environment label for the control runs.
ENV_NO_VM = "no-vm"

#: Paper's VM priority settings in §4.2.2.
PRIORITY_LABELS = {"normal": PRIORITY_NORMAL, "idle": PRIORITY_IDLE}


@dataclass(frozen=True)
class HostImpactConfig:
    """One host-impact configuration."""

    environment: str = ENV_NO_VM     # "no-vm" or a hypervisor profile name
    vm_priority: str = "idle"        # "idle" (volunteer default) or "normal"
    duration_s: float = 20.0

    def __post_init__(self):
        if self.vm_priority not in PRIORITY_LABELS:
            raise ExperimentError(
                f"vm_priority must be one of {sorted(PRIORITY_LABELS)}"
            )


def _start_background_vm(testbed: Testbed, config: HostImpactConfig):
    """Boot the VM and set Einstein@home chewing on the virtual CPU."""
    vm_holder = {}

    def driver():
        vm = yield from boot_vm(
            testbed, config.environment,
            VmConfig(priority=PRIORITY_LABELS[config.vm_priority]),
        )
        vm_holder["vm"] = vm
        ctx = vm.guest_context()
        task = EinsteinTask(EinsteinWorkunit(n_templates=10 ** 9),
                            checkpoint_interval_s=60.0)
        yield from task.run_forever(ctx)

    testbed.engine.process(driver(), name="einstein-vm")
    return vm_holder


def run_sevenzip_impact(config: HostImpactConfig, threads: int,
                        seed: int) -> Dict[str, float]:
    """One repetition of the Figure 7/8 measurement."""
    testbed = build_host_testbed(seed, with_peer=False, with_timeserver=False)
    vm_holder = {}
    if config.environment != ENV_NO_VM:
        vm_holder = _start_background_vm(testbed, config)
    bench = SevenZipHostBenchmark(
        testbed.kernel, threads=threads, duration_s=config.duration_s,
        rng=testbed.rng.fork("7z"),
    )
    proc = testbed.engine.process(bench.run(), name="7z-host")
    result = testbed.run_to_completion(proc)
    metrics = {
        "usage_pct": result.metric("usage_pct"),
        "mips": result.metric("mips"),
    }
    vm = vm_holder.get("vm")
    if vm is not None:
        metrics["guest_instructions"] = vm.vcpu.guest_instructions
        metrics["guest_clock_error_s"] = vm.guest_clock.error_seconds(
            testbed.engine.now
        )
        vm.shutdown()
    return metrics


def run_nbench_impact(config: HostImpactConfig, group: IndexGroup,
                      seed: int) -> Dict[str, float]:
    """One repetition of the Figure 5/6 measurement (one NBench group)."""
    testbed = build_host_testbed(seed, with_peer=False, with_timeserver=False)
    vm_holder = {}
    if config.environment != ENV_NO_VM:
        vm_holder = _start_background_vm(testbed, config)
    thread = testbed.kernel.spawn_thread("nbench", PRIORITY_NORMAL)
    ctx = testbed.kernel.context(thread)
    harness = NBenchHarness(groups=[group])
    proc = testbed.engine.process(harness.run(ctx), name="nbench-host")
    result = testbed.run_to_completion(proc)
    metrics = {f"{group.value}_index": result.metric(f"{group.value}_index")}
    vm = vm_holder.get("vm")
    if vm is not None:
        vm.shutdown()
    return metrics


class SevenZipImpactMeasure:
    """Picklable measure fn for one Figure 7/8 configuration."""

    __slots__ = ("config", "threads")

    def __init__(self, config: HostImpactConfig, threads: int):
        self.config = config
        self.threads = threads

    def __call__(self, seed: int) -> Mapping[str, float]:
        return run_sevenzip_impact(self.config, self.threads, seed)


class NBenchImpactMeasure:
    """Picklable measure fn for one Figure 5/6 configuration."""

    __slots__ = ("config", "group")

    def __init__(self, config: HostImpactConfig, group: IndexGroup):
        self.config = config
        self.group = group

    def __call__(self, seed: int) -> Mapping[str, float]:
        return run_nbench_impact(self.config, self.group, seed)


def sevenzip_impact_experiment(environments, threads: int,
                               vm_priority: str = "idle",
                               duration_s: float = 20.0, base_seed: int = 0,
                               default_reps: int = 5,
                               jobs: Optional[int] = None
                               ) -> Dict[str, Dict[str, Summary]]:
    """Figure 7/8 sweep.  Returns ``{env: {metric: Summary}}``."""
    out: Dict[str, Dict[str, Summary]] = {}
    for env in environments:
        config = HostImpactConfig(environment=env, vm_priority=vm_priority,
                                  duration_s=duration_s)
        repeated = repeat(SevenZipImpactMeasure(config, threads),
                          base_seed=base_seed, default_reps=default_reps,
                          jobs=jobs)
        out[env] = repeated.metrics
    return out


def nbench_impact_experiment(environments, group: IndexGroup,
                             priorities=("normal", "idle"),
                             base_seed: int = 0, default_reps: int = 5,
                             jobs: Optional[int] = None
                             ) -> Dict[str, Dict[str, Summary]]:
    """Figure 5/6 sweep.

    Returns ``{label: {metric: Summary}}`` where label is ``env`` for the
    control and ``env/priority`` for VM runs (the paper plots normal and
    idle side by side).
    """
    out: Dict[str, Dict[str, Summary]] = {}
    for env in environments:
        run_priorities = [None] if env == ENV_NO_VM else list(priorities)
        for priority in run_priorities:
            config = HostImpactConfig(
                environment=env,
                vm_priority=priority if priority else "idle",
            )
            label = env if priority is None else f"{env}/{priority}"
            repeated = repeat(NBenchImpactMeasure(config, group),
                              base_seed=base_seed, default_reps=default_reps,
                              jobs=jobs)
            out[label] = repeated.metrics
    return out
