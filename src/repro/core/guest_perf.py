"""Experiment 1: performance of guest OSes (paper §4.1, Figures 1-4).

For each environment (native Ubuntu, or a Linux guest under one of the
four VMMs) run a benchmark and extract its headline metric.  Guest runs
are timed against the host's UDP time server, never the guest clock,
exactly as the paper does.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.core.experiment import repeat
from repro.core.stats import Summary
from repro.core.testbed import (
    ENV_NATIVE,
    Testbed,
    boot_vm,
    build_host_testbed,
    build_native_testbed,
    guest_time_client,
)
from repro.errors import ExperimentError
from repro.osmodel.threads import PRIORITY_NORMAL
from repro.virt.profiles import ALL_PROFILES
from repro.workloads.base import WorkloadResult

#: benchmark factory: given the testbed, build a workload with .run(ctx)
BenchFactory = Callable[[Testbed], object]

#: Environments of the guest-performance experiment, figure order.
#: VMware's two network modes count as separate environments in Fig 4.
GUEST_ENVIRONMENTS = (ENV_NATIVE, "vmplayer", "qemu", "virtualbox",
                      "virtualpc")


def parse_environment(env: str) -> tuple:
    """Split ``"vmplayer:nat"`` into (profile, net_mode)."""
    if ":" in env:
        profile, mode = env.split(":", 1)
        return profile, mode
    return env, None


def run_benchmark_in_environment(env: str, bench_factory: BenchFactory,
                                 seed: int) -> WorkloadResult:
    """One repetition: build the world, run the benchmark, return result."""
    profile_name, net_mode = parse_environment(env)
    if profile_name == ENV_NATIVE:
        testbed = build_native_testbed(seed)
        thread = testbed.kernel.spawn_thread("bench", PRIORITY_NORMAL)
        ctx = testbed.kernel.context(thread)
        bench = bench_factory(testbed)
        proc = testbed.engine.process(bench.run(ctx), name="bench")
        return testbed.run_to_completion(proc)

    if profile_name not in ALL_PROFILES:
        raise ExperimentError(f"unknown environment {env!r}")
    testbed = build_host_testbed(seed)

    def driver():
        from repro.virt.vm import VmConfig

        vm = yield from boot_vm(
            testbed, profile_name,
            VmConfig(priority=PRIORITY_NORMAL, net_mode=net_mode),
        )
        # paper methodology: guest timestamps via the host UDP time server
        client = guest_time_client(testbed, vm)
        ctx = vm.guest_context(timestamp_source=client.query)
        bench = bench_factory(testbed)
        result = yield from bench.run(ctx)
        result.environment = env
        return result

    proc = testbed.engine.process(driver(), name=f"bench:{env}")
    return testbed.run_to_completion(proc)


class EnvironmentMeasure:
    """Picklable measure fn: one repetition of a benchmark in one env.

    A plain class (not a closure) so the parallel repetition harness can
    ship it to worker processes; it is picklable whenever the benchmark
    factory is (module-level function, ``functools.partial`` of one, or a
    class instance).
    """

    __slots__ = ("env", "bench_factory", "metric")

    def __init__(self, env: str, bench_factory: BenchFactory, metric: str):
        self.env = env
        self.bench_factory = bench_factory
        self.metric = metric

    def __call__(self, seed: int) -> Mapping[str, float]:
        result = run_benchmark_in_environment(self.env, self.bench_factory,
                                              seed)
        return {self.metric: float(result.metric(self.metric)),
                "duration_s": result.duration_s}


def guest_perf_experiment(bench_factory: BenchFactory, metric: str,
                          environments=GUEST_ENVIRONMENTS,
                          base_seed: int = 0,
                          default_reps: int = 10,
                          jobs: Optional[int] = None) -> Dict[str, Summary]:
    """Repeated runs of one benchmark across environments.

    Returns ``{environment: Summary-of-metric}``.
    """
    out: Dict[str, Summary] = {}
    for env in environments:
        repeated = repeat(EnvironmentMeasure(env, bench_factory, metric),
                          base_seed=base_seed, default_reps=default_reps,
                          jobs=jobs)
        out[env] = repeated[metric]
    return out


def normalize_against_native(results: Mapping[str, Summary],
                             invert: bool = False) -> Dict[str, float]:
    """Relative-performance values as plotted in Figures 1-3.

    The paper normalises against native and plots *performance lag*
    (bigger = slower).  For rate metrics (MIPS, MB/s) the lag is
    ``native / env``; for time metrics it is ``env / native``
    (``invert=True`` selects the latter).
    """
    if ENV_NATIVE not in results:
        raise ExperimentError("results lack the native baseline")
    native = results[ENV_NATIVE].mean
    out: Dict[str, float] = {}
    for env, summary in results.items():
        if invert:
            out[env] = summary.mean / native
        else:
            if summary.mean == 0:
                raise ExperimentError(f"zero mean for {env!r}")
            out[env] = native / summary.mean
    return out
