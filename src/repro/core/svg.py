"""Dependency-free SVG rendering of figures.

The repository has no plotting dependency (matplotlib is not part of the
install footprint), so figures can be exported as hand-built SVG bar
charts: one bar per environment, paper values as tick markers, CI
whiskers when available.  `python -m repro figure fig1 --svg out/` uses
this; so can notebooks.
"""

from __future__ import annotations

import html
from typing import List

from repro.core.figures import FigureData

_WIDTH = 760
_BAR_HEIGHT = 22
_BAR_GAP = 10
_MARGIN_LEFT = 190
_MARGIN_TOP = 56
_MARGIN_RIGHT = 120
_FONT = "font-family='Helvetica,Arial,sans-serif'"

_BAR_COLOR = "#4878a8"
_PAPER_COLOR = "#c44e52"
_CI_COLOR = "#2d2d2d"


def _esc(text: str) -> str:
    return html.escape(str(text), quote=True)


def figure_to_svg(fig: FigureData) -> str:
    """Render a figure as a standalone SVG document string."""
    rows = fig.rows()
    n = max(1, len(rows))
    chart_height = n * (_BAR_HEIGHT + _BAR_GAP)
    height = _MARGIN_TOP + chart_height + 40
    plot_width = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT

    peak = max(
        [abs(value) + ci for _, value, ci, _ in rows]
        + [abs(p) for _, _, _, p in rows if p is not None]
        + [1e-12]
    )
    scale = plot_width / peak

    parts: List[str] = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{_WIDTH}' "
        f"height='{height}' viewBox='0 0 {_WIDTH} {height}'>",
        f"<rect width='{_WIDTH}' height='{height}' fill='white'/>",
        f"<text x='16' y='24' {_FONT} font-size='15' font-weight='bold'>"
        f"{_esc(fig.fig_id.upper())} — {_esc(fig.title)}</text>",
        f"<text x='16' y='42' {_FONT} font-size='11' fill='#555'>"
        f"{_esc(fig.unit)}</text>",
    ]

    for index, (label, value, ci, paper) in enumerate(rows):
        y = _MARGIN_TOP + index * (_BAR_HEIGHT + _BAR_GAP)
        bar_w = max(1.0, abs(value) * scale)
        mid = y + _BAR_HEIGHT / 2
        parts.append(
            f"<text x='{_MARGIN_LEFT - 8}' y='{mid + 4}' {_FONT} "
            f"font-size='11' text-anchor='end'>{_esc(label)}</text>"
        )
        parts.append(
            f"<rect x='{_MARGIN_LEFT}' y='{y}' width='{bar_w:.2f}' "
            f"height='{_BAR_HEIGHT}' fill='{_BAR_COLOR}'/>"
        )
        if ci:
            x0 = _MARGIN_LEFT + max(0.0, (abs(value) - ci)) * scale
            x1 = _MARGIN_LEFT + (abs(value) + ci) * scale
            parts.append(
                f"<line x1='{x0:.2f}' y1='{mid:.2f}' x2='{x1:.2f}' "
                f"y2='{mid:.2f}' stroke='{_CI_COLOR}' stroke-width='1.5'/>"
            )
        if paper is not None:
            px = _MARGIN_LEFT + abs(paper) * scale
            parts.append(
                f"<line x1='{px:.2f}' y1='{y - 2}' x2='{px:.2f}' "
                f"y2='{y + _BAR_HEIGHT + 2}' stroke='{_PAPER_COLOR}' "
                f"stroke-width='2' stroke-dasharray='3,2'/>"
            )
        parts.append(
            f"<text x='{_MARGIN_LEFT + bar_w + 6:.2f}' y='{mid + 4}' "
            f"{_FONT} font-size='11'>{value:.3g}</text>"
        )

    legend_y = _MARGIN_TOP + chart_height + 18
    parts.append(
        f"<rect x='{_MARGIN_LEFT}' y='{legend_y - 9}' width='14' "
        f"height='10' fill='{_BAR_COLOR}'/>"
        f"<text x='{_MARGIN_LEFT + 20}' y='{legend_y}' {_FONT} "
        f"font-size='11'>measured</text>"
    )
    if any(paper is not None for *_ignored, paper in rows):
        parts.append(
            f"<line x1='{_MARGIN_LEFT + 110}' y1='{legend_y - 4}' "
            f"x2='{_MARGIN_LEFT + 124}' y2='{legend_y - 4}' "
            f"stroke='{_PAPER_COLOR}' stroke-width='2' "
            f"stroke-dasharray='3,2'/>"
            f"<text x='{_MARGIN_LEFT + 130}' y='{legend_y}' {_FONT} "
            f"font-size='11'>paper</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(fig: FigureData, path: str) -> str:
    """Write the figure's SVG to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(figure_to_svg(fig))
    return path
