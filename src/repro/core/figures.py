"""Figure generators: one function per paper figure (and ablations).

Each returns a :class:`FigureData` holding the measured series, CIs, the
paper's reported values and a human-readable note — everything the report
renderer and the shape-checking tests need.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace as dc_replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.calibration import targets
from repro.core.guest_perf import (
    GUEST_ENVIRONMENTS,
    guest_perf_experiment,
    normalize_against_native,
)
from repro.core.host_impact import (
    ENV_NO_VM,
    HostImpactConfig,
    nbench_impact_experiment,
    run_sevenzip_impact,
    sevenzip_impact_experiment,
)
from repro.core.stats import Summary
from repro.core.testbed import ENV_NATIVE
from repro.virt.profiles import PROFILE_ORDER
from repro.workloads.iobench import IoBench
from repro.workloads.matrix import MatrixBenchmark, MatrixConfig
from repro.workloads.nbench import IndexGroup
from repro.workloads.netbench import NetBench
from repro.workloads.sevenzip import SevenZipBenchmark, SevenZipConfig

HOST_ENVIRONMENTS = (ENV_NO_VM,) + PROFILE_ORDER


@dataclass
class MeasuredPoint:
    value: float
    ci95: float = 0.0


@dataclass
class FigureData:
    """One reproduced figure."""

    fig_id: str
    title: str
    unit: str
    series: "Dict[str, MeasuredPoint]" = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def measured_values(self) -> Dict[str, float]:
        return {label: point.value for label, point in self.series.items()}

    def rows(self) -> List[Tuple[str, float, float, Optional[float]]]:
        """(label, measured, ci, paper-or-None) for rendering."""
        out = []
        for label, point in self.series.items():
            out.append((label, point.value, point.ci95,
                        self.paper.get(label)))
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, order-preserving encoding (exact float round-trip).

        The stable interchange format shared by the result cache, run
        manifests and :class:`repro.api.RunResult` — downstream tooling
        should consume this rather than reaching into dataclass fields.
        """
        return {
            "fig_id": self.fig_id,
            "title": self.title,
            "unit": self.unit,
            "notes": self.notes,
            "series": [[label, point.value, point.ci95]
                       for label, point in self.series.items()],
            "paper": [[label, value] for label, value in self.paper.items()],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FigureData":
        """Inverse of :meth:`to_dict`."""
        fig = cls(
            fig_id=payload["fig_id"], title=payload["title"],
            unit=payload["unit"], notes=payload["notes"],
            paper={label: value for label, value in payload["paper"]},
        )
        for label, value, ci95 in payload["series"]:
            fig.series[label] = MeasuredPoint(value, ci95)
        return fig


# ---------------------------------------------------------------------------
# Experiment 1: guest performance (Figures 1-4)
# ---------------------------------------------------------------------------

def _sevenzip_guest_factory(tb):
    # Module-level (not a lambda) so repetitions can run in worker processes.
    return SevenZipBenchmark(SevenZipConfig(n_blocks=16),
                             rng=tb.rng.fork("7z"))


def _matrix_guest_factory(tb, size: int):
    return MatrixBenchmark(MatrixConfig(size=size))


def _iobench_guest_factory(tb):
    return IoBench()


def figure1_sevenzip(base_seed: int = 1, default_reps: int = 10) -> FigureData:
    """7z relative performance on virtual machines."""
    results = guest_perf_experiment(
        _sevenzip_guest_factory,
        metric="mips", environments=GUEST_ENVIRONMENTS,
        base_seed=base_seed, default_reps=default_reps,
    )
    relative = normalize_against_native(results)  # MIPS: lag = native/env
    fig = FigureData(
        fig_id="fig1", title="Relative performance of 7z on virtual machines",
        unit="slowdown vs native (1.0 = native)",
        paper=dict(targets.FIG1_SEVENZIP_RELATIVE),
        notes="Single-threaded `7z b`; guest runs timed via UDP time server.",
    )
    for env in GUEST_ENVIRONMENTS:
        _, rel_ci = _ratio_ci(results[env], results[ENV_NATIVE])
        fig.series[env] = MeasuredPoint(relative[env], rel_ci)
    return fig


def figure2_matrix(base_seed: int = 2, default_reps: int = 10,
                   size: int = 512) -> FigureData:
    """Matrix relative performance on virtual machines."""
    results = guest_perf_experiment(
        functools.partial(_matrix_guest_factory, size=size),
        metric="seconds_per_multiply", environments=GUEST_ENVIRONMENTS,
        base_seed=base_seed, default_reps=default_reps,
    )
    relative = normalize_against_native(results, invert=True)  # time metric
    fig = FigureData(
        fig_id="fig2",
        title="Relative performance of Matrix on virtual machines",
        unit="slowdown vs native (1.0 = native)",
        paper=dict(targets.FIG2_MATRIX_RELATIVE),
        notes=f"Naive {size}x{size} double matmul "
              f"(paper uses 512 and 1024; slowdowns are size-independent).",
    )
    for env in GUEST_ENVIRONMENTS:
        _, rel_ci = _ratio_ci(results[env], results[ENV_NATIVE])
        fig.series[env] = MeasuredPoint(relative[env], rel_ci)
    return fig


def figure3_iobench(base_seed: int = 3, default_reps: int = 5) -> FigureData:
    """IOBench relative performance on virtual machines."""
    results = guest_perf_experiment(
        _iobench_guest_factory,
        metric="aggregate_mbps", environments=GUEST_ENVIRONMENTS,
        base_seed=base_seed, default_reps=default_reps,
    )
    relative = normalize_against_native(results)
    fig = FigureData(
        fig_id="fig3",
        title="Relative performance of IOBench on virtual machines",
        unit="slowdown vs native (1.0 = native)",
        paper=dict(targets.FIG3_IOBENCH_RELATIVE),
        notes="Write+fsync+read ladder, 128 KB..32 MB doubling.",
    )
    for env in GUEST_ENVIRONMENTS:
        _, rel_ci = _ratio_ci(results[env], results[ENV_NATIVE])
        fig.series[env] = MeasuredPoint(relative[env], rel_ci)
    return fig


#: Figure 4 runs VMware twice (bridged and NAT), as the paper does.
FIG4_ENVIRONMENTS = (ENV_NATIVE, "vmplayer:bridged", "vmplayer:nat",
                     "qemu", "virtualbox", "virtualpc")


def _netbench_factory(tb):
    from repro.workloads.netbench import IperfServer

    IperfServer(tb.peer_kernel)  # arm the remote iperf server
    return NetBench(tb.peer_kernel)


def figure4_netbench(base_seed: int = 4, default_reps: int = 5) -> FigureData:
    """NetBench absolute throughput per environment."""
    results = guest_perf_experiment(
        _netbench_factory,
        metric="mbps", environments=FIG4_ENVIRONMENTS,
        base_seed=base_seed, default_reps=default_reps,
    )
    fig = FigureData(
        fig_id="fig4",
        title="Absolute performance for NetBench on virtual machines",
        unit="Mbps (higher is better)",
        paper=dict(targets.FIG4_NETBENCH_MBPS),
        notes="10 MB TCP stream to the LAN iperf server over 100 Mbps.",
    )
    for env in FIG4_ENVIRONMENTS:
        summary = results[env]
        fig.series[env] = MeasuredPoint(summary.mean, summary.ci95)
    return fig


# ---------------------------------------------------------------------------
# Experiment 2: impact on host (Figures 5-8)
# ---------------------------------------------------------------------------

def _nbench_overhead_figure(fig_id: str, group: IndexGroup, title: str,
                            base_seed: int, default_reps: int) -> FigureData:
    results = nbench_impact_experiment(
        HOST_ENVIRONMENTS, group, base_seed=base_seed,
        default_reps=default_reps,
    )
    metric = f"{group.value}_index"
    baseline = results[ENV_NO_VM][metric]
    fig = FigureData(
        fig_id=fig_id, title=title,
        unit="overhead vs no-VM host run (fraction; smaller is better)",
        notes=("Host NBench "
               f"{group.value.upper()} index while a guest computes "
               "Einstein@home; VM at normal and idle priority."),
    )
    for label, metrics in results.items():
        if label == ENV_NO_VM:
            continue
        overhead = 1.0 - metrics[metric].mean / baseline.mean
        _, ci = _ratio_ci(metrics[metric], baseline)
        fig.series[label] = MeasuredPoint(overhead, ci)
    return fig


def figure5_nbench_mem(base_seed: int = 5, default_reps: int = 3) -> FigureData:
    fig = _nbench_overhead_figure(
        "fig5", IndexGroup.MEM, "Relative performance (MEM index)",
        base_seed, default_reps,
    )
    fig.paper = {"(max over environments)": targets.FIG5_MEM_OVERHEAD_MAX}
    return fig


def figure6_nbench_int(base_seed: int = 6, default_reps: int = 3) -> FigureData:
    fig = _nbench_overhead_figure(
        "fig6", IndexGroup.INT, "Relative performance (INT index)",
        base_seed, default_reps,
    )
    fig.paper = {"(average over environments)": targets.FIG6_INT_OVERHEAD_APPROX}
    return fig


def figure6b_nbench_fp(base_seed: int = 66, default_reps: int = 3) -> FigureData:
    """The FP-index plot the paper describes but omits to save space."""
    fig = _nbench_overhead_figure(
        "fig6b", IndexGroup.FP,
        "Relative performance (FP index; plot omitted in the paper)",
        base_seed, default_reps,
    )
    fig.paper = {"(max over environments)": targets.FIG6B_FP_OVERHEAD_MAX}
    return fig


def figure7_host_cpu(base_seed: int = 7, default_reps: int = 3,
                     duration_s: float = 20.0) -> FigureData:
    """Available % CPU for the host OS while the guest runs at 100%."""
    fig = FigureData(
        fig_id="fig7",
        title="Available % CPU for host OS when guest OS is running at 100%",
        unit="% CPU (200% = both cores)",
        paper={f"{env}/{thr}t": value
               for (env, thr), value in targets.FIG7_HOST_CPU_PCT.items()},
        notes="7z on the host at -mmt 1 and -mmt 2; VM at idle priority.",
    )
    for threads in (1, 2):
        results = sevenzip_impact_experiment(
            HOST_ENVIRONMENTS, threads=threads, duration_s=duration_s,
            base_seed=base_seed + threads, default_reps=default_reps,
        )
        for env in HOST_ENVIRONMENTS:
            summary = results[env]["usage_pct"]
            fig.series[f"{env}/{threads}t"] = MeasuredPoint(
                summary.mean, summary.ci95
            )
    return fig


def figure8_host_mips(base_seed: int = 8, default_reps: int = 3,
                      duration_s: float = 20.0) -> FigureData:
    """Host 7z MIPS ratio (with VM / without VM)."""
    fig = FigureData(
        fig_id="fig8",
        title="MIPS for 7z when guest OS is running at 100%",
        unit="MIPS ratio vs no-VM (1.0 = unaffected)",
        paper={f"{env}/2t": value
               for env, value in targets.FIG8_MIPS_RATIO.items()},
        notes="Ratio of host 7z MIPS with an active VM to the no-VM run.",
    )
    for threads in (1, 2):
        results = sevenzip_impact_experiment(
            HOST_ENVIRONMENTS, threads=threads, duration_s=duration_s,
            base_seed=base_seed + threads, default_reps=default_reps,
        )
        baseline = results[ENV_NO_VM]["mips"]
        for env in HOST_ENVIRONMENTS:
            if env == ENV_NO_VM:
                continue
            ratio, ci = _ratio_ci(results[env]["mips"], baseline)
            fig.series[f"{env}/{threads}t"] = MeasuredPoint(ratio, ci)
    return fig


def memory_footprint_figure(base_seed: int = 9) -> FigureData:
    """§4.2.1: the VM's memory cost is configured, constant, known."""
    from repro.core.testbed import boot_vm, build_host_testbed
    from repro.units import MB

    testbed = build_host_testbed(base_seed, with_peer=False,
                                 with_timeserver=False)
    fig = FigureData(
        fig_id="mem",
        title="Host memory committed by the running VM (per §4.2.1)",
        unit="MB",
        paper={"configured guest RAM": float(targets.VM_CONFIGURED_MEMORY_MB)},
        notes="Commitment appears at boot and vanishes at shutdown; the "
              "VMM adds a fixed overhead on top of the configured 300 MB.",
    )
    before = testbed.machine.memory.committed_bytes

    def driver():
        vm = yield from boot_vm(testbed, "vmplayer")
        return vm

    vm = testbed.run_to_completion(testbed.engine.process(driver(), "boot"))
    during = testbed.machine.memory.committed_bytes
    vm.shutdown()
    after = testbed.machine.memory.committed_bytes
    fig.series["before boot"] = MeasuredPoint(before / MB)
    fig.series["while running"] = MeasuredPoint(during / MB)
    fig.series["configured guest RAM"] = MeasuredPoint(
        vm.config.memory_bytes / MB
    )
    fig.series["after shutdown"] = MeasuredPoint(after / MB)
    return fig


# ---------------------------------------------------------------------------
# Multi-VM host memory figures (repro.virt.memory) — the scenario family
# the paper's single-VM setup could not express.
# ---------------------------------------------------------------------------

def multivm_intrusiveness(base_seed: int = 21, default_reps: int = 3,
                          duration_s: float = 6.0,
                          vm_counts: Tuple[int, ...] = (2, 4, 8),
                          overcommit_ratio: float = 1.25,
                          host_threads: int = 1) -> FigureData:
    """Host intrusiveness of 2/4/8 co-located VMs under one memory arbiter.

    Same protocol as Figure 8 (host 7z MIPS while guests compute
    Einstein@home), generalised to N VMs sharing the configured
    overcommit budget.  Intrusiveness = 1 - MIPS ratio vs the no-VM
    control; more VMs mean more service threads, memory ticks and
    balloon traffic, so the series rises monotonically with N.
    """
    from repro.core.multivm import MultiVmConfig, multivm_impact_experiment

    counts = tuple(int(n) for n in vm_counts)
    configs = [MultiVmConfig(n_vms=0, overcommit_ratio=overcommit_ratio,
                             duration_s=duration_s,
                             host_threads=host_threads)]
    configs += [MultiVmConfig(n_vms=n, overcommit_ratio=overcommit_ratio,
                              duration_s=duration_s,
                              host_threads=host_threads)
                for n in counts]
    results = multivm_impact_experiment(configs, base_seed=base_seed,
                                        default_reps=default_reps)
    baseline = results[configs[0]]["mips"]
    fig = FigureData(
        fig_id="multivm_intrusiveness",
        title="Host intrusiveness of N co-located VMs "
              "(ballooned, shared memory budget)",
        unit="host MIPS overhead vs no-VM (fraction; higher = worse)",
        notes=f"Host 7z at {host_threads} thread(s) against N idle-priority "
              f"VMs; configured guest RAM totals {overcommit_ratio:g}x "
              "physical RAM, arbitrated by the balloon controller.",
    )
    for config in configs[1:]:
        overhead = 1.0 - results[config]["mips"].mean / baseline.mean
        _, ci = _ratio_ci(results[config]["mips"], baseline)
        fig.series[f"{config.n_vms} VMs"] = MeasuredPoint(overhead, ci)
    return fig


def balloon_storm(base_seed: int = 22, default_reps: int = 3,
                  duration_s: float = 8.0, vms_per_host: int = 4,
                  overcommit_ratio: float = 1.6) -> FigureData:
    """Balloon traffic and reclaim under deliberate overcommit.

    An idle host (no owner benchmark) whose guests' working sets churn
    through phases while the pressure controller arbitrates; the figure
    reads out the memory subsystem itself.
    """
    from repro.core.multivm import (MultiVmConfig, MultiVmImpactMeasure,
                                    repeat)

    config = MultiVmConfig(n_vms=vms_per_host,
                           overcommit_ratio=overcommit_ratio,
                           duration_s=duration_s, host_threads=0)
    repeated = repeat(MultiVmImpactMeasure(config), base_seed=base_seed,
                      default_reps=default_reps)
    fig = FigureData(
        fig_id="balloon_storm",
        title=f"Balloon storm: {vms_per_host} VMs at "
              f"{overcommit_ratio:g}x overcommit",
        unit="MB / pages / Ginstr (mixed; see labels)",
        notes="Working sets are phase-driven and seeded; the controller "
              "inflates balloons toward the host headroom limit and "
              "kswapd reclaims whatever still spills into swap.",
    )
    for label, metric in (("committed peak (MB)", "committed_peak_mb"),
                          ("balloon moved (MB)", "balloon_moved_mb"),
                          ("squeezed peak (MB)", "squeezed_peak_mb"),
                          ("reclaim (pages)", "reclaim_pages"),
                          ("guest throughput (Ginstr)", "guest_ginstr")):
        summary = repeated.metrics[metric]
        fig.series[label] = MeasuredPoint(summary.mean, summary.ci95)
    return fig


def overcommit_sweep(base_seed: int = 23, default_reps: int = 3,
                     duration_s: float = 6.0, vms_per_host: int = 4,
                     ratios: Tuple[float, ...] = (0.8, 1.2, 1.6, 2.0)
                     ) -> FigureData:
    """Guest throughput and reclaim across the overcommit ratio axis."""
    from repro.core.multivm import MultiVmConfig, multivm_impact_experiment

    configs = [MultiVmConfig(n_vms=vms_per_host, overcommit_ratio=float(r),
                             duration_s=duration_s, host_threads=0)
               for r in ratios]
    results = multivm_impact_experiment(configs, base_seed=base_seed,
                                        default_reps=default_reps)
    fig = FigureData(
        fig_id="overcommit_sweep",
        title=f"Overcommit sweep: {vms_per_host} VMs, idle host",
        unit="Ginstr / pages (mixed; see labels)",
        notes="Past 1.0x the paging penalty and reclaim/fault service "
              "eat into guest throughput; the sweep locates the knee.",
    )
    for config in configs:
        ratio = config.overcommit_ratio
        ginstr = results[config]["guest_ginstr"]
        reclaim = results[config]["reclaim_pages"]
        fig.series[f"ratio {ratio:g}: guest Ginstr"] = MeasuredPoint(
            ginstr.mean, ginstr.ci95)
        fig.series[f"ratio {ratio:g}: reclaim pages"] = MeasuredPoint(
            reclaim.mean, reclaim.ci95)
    return fig


# ---------------------------------------------------------------------------
# Fleet-scale figures (repro.fleet) — lazy wrappers, since fleet.figures
# imports FigureData from this module.
# ---------------------------------------------------------------------------

def fleet_figure(**kwargs) -> FigureData:
    """Validated throughput vs fleet size (see repro.fleet.figures)."""
    from repro.fleet.figures import fleet_scale_figure

    return fleet_scale_figure(**kwargs)


def fleet_makespan(**kwargs) -> FigureData:
    """Makespan percentiles per hypervisor fleet."""
    from repro.fleet.figures import fleet_makespan_figure

    return fleet_makespan_figure(**kwargs)


def fleet_waste(**kwargs) -> FigureData:
    """Wasted-CPU fraction per hypervisor in a mixed fleet."""
    from repro.fleet.figures import fleet_waste_figure

    return fleet_waste_figure(**kwargs)


def fleet_outage(**kwargs) -> FigureData:
    """Makespan/waste vs server outage duration (arms its own plan)."""
    from repro.fleet.figures import fleet_outage_figure

    return fleet_outage_figure(**kwargs)


def fleet_checkpoint(**kwargs) -> FigureData:
    """Wasted CPU vs checkpoint interval under a vm.crash storm."""
    from repro.fleet.figures import fleet_checkpoint_figure

    return fleet_checkpoint_figure(**kwargs)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

FIGURES = {
    "fig1": figure1_sevenzip,
    "fig2": figure2_matrix,
    "fig3": figure3_iobench,
    "fig4": figure4_netbench,
    "fig5": figure5_nbench_mem,
    "fig6": figure6_nbench_int,
    "fig6b": figure6b_nbench_fp,
    "fig7": figure7_host_cpu,
    "fig8": figure8_host_mips,
    "mem": memory_footprint_figure,
    "multivm_intrusiveness": multivm_intrusiveness,
    "balloon_storm": balloon_storm,
    "overcommit_sweep": overcommit_sweep,
    "fleet": fleet_figure,
    "fleet_makespan": fleet_makespan,
    "fleet_waste": fleet_waste,
    "fleet_outage": fleet_outage,
    "fleet_checkpoint": fleet_checkpoint,
}

def figure_to_payload(fig: FigureData) -> Dict[str, Any]:
    """Back-compat alias for :meth:`FigureData.to_dict`."""
    return fig.to_dict()


def figure_from_payload(payload: Mapping[str, Any]) -> FigureData:
    """Back-compat alias for :meth:`FigureData.from_dict`."""
    return FigureData.from_dict(payload)


def generate_figure(fig_id: str, use_cache: Optional[bool] = None,
                    **kwargs) -> FigureData:
    """Generate (or fetch from the result cache) one figure.

    ``use_cache=None`` consults the run config's cache toggle (off by
    default for library callers; the CLI and benchmark suite turn it
    on).  Cache identity covers the figure id, every keyword argument,
    the resolved repetition policy, the package version and a source
    fingerprint — see :mod:`repro.core.cache` for the invalidation
    rules.  Prefer :func:`repro.api.run_figure`, which also times phases
    and can emit a run manifest.
    """
    from repro import api
    from repro.core.cache import ResultCache, cache_enabled

    try:
        factory = FIGURES[fig_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {fig_id!r}; available: {sorted(FIGURES)}"
        ) from None
    cache_on = cache_enabled(default=False) if use_cache is None else use_cache
    if not cache_on:
        return factory(**kwargs)
    from repro.faults import FAULTS

    cache = ResultCache()
    params = {
        "kwargs": dict(sorted(kwargs.items())),
        "reps_policy": api.fallback_config("reps").reps_policy(),
    }
    # An active fault plan can legitimately change results (host.dropout,
    # checkpoint.lost survive recovery); keep those entries distinct.
    fault_token = FAULTS.cache_token()
    if fault_token is not None:
        params["faults"] = fault_token
    key = cache.key(f"figure:{fig_id}", params)
    payload = cache.get(key)
    if payload is not None:
        return FigureData.from_dict(payload)
    fig = factory(**kwargs)
    cache.put(key, fig.to_dict(), experiment=f"figure:{fig_id}",
              params=params)
    return fig


def _ratio_ci(numerator: Summary, denominator: Summary) -> Tuple[float, float]:
    from repro.core.stats import ratio_of_means

    return ratio_of_means(numerator, denominator)
