"""Run-metrics registry: counters, gauges and timers for the whole stack.

Instrumentation sites live on hot paths (the event loop, the scheduler's
placement routine, every disk/NIC request), so the registry follows the
same guard contract as :class:`repro.simcore.trace.Tracer`:

* the **only** cost at a disabled site is one attribute read and a branch
  (``if METRICS.enabled:``); no kwargs are built, no strings formatted;
* sites on the very hottest loop (``Engine.run``) hoist the flag into a
  local before the loop and accumulate into plain locals, folding into
  the registry once per ``run()`` call.

Three instrument kinds, all addressed by dotted string name:

* **counter** — monotone float total (``inc``);
* **gauge** — last/max observed value (``gauge_set`` / ``gauge_max``);
* **timer** — count/total/min/max aggregate of observed durations or
  sizes (``observe``; a histogram-lite that keeps the manifest small);
* **hist** — power-of-two bucketed counts (``hist``) for values whose
  *distribution* matters (fleet makespans, queue depths); buckets are
  labelled by their upper bound so snapshots merge by simple addition.

The module-level :data:`METRICS` registry is process-global and disabled
by default; :func:`repro.api.run_figure` enables it for metrics-enabled
runs.  Persistent pool workers (:mod:`repro.core.workerpool`) re-arm
their process-private registry per task from the spec's shipped context
(fork-time inheritance is not relied on — the pool outlives any one
run's enablement), reset it, and ship a snapshot back in the
``WorkerResult`` payload, which the parent merges — so per-subsystem
counters survive ``--jobs N`` fan-out.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple


def _hist_bucket_key(item: Tuple[str, float]) -> float:
    """Numeric sort key for a bucket label (``underflow`` sorts first)."""
    label = item[0]
    if label == "underflow":
        return float("-inf")
    try:
        return float(label[3:])
    except ValueError:
        return float("inf")


class MetricsRegistry:
    """Named counters/gauges/timers behind a single ``enabled`` flag.

    ``inc``/``observe``/``gauge_*`` early-return when disabled (second
    line of defence — guarded call sites never reach them).
    """

    __slots__ = ("enabled", "counters", "gauges", "timers", "hists")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [count, total, min, max]
        self.timers: Dict[str, list] = {}
        # name -> {bucket_upper_bound_label: count}
        self.hists: Dict[str, Dict[str, float]] = {}

    # -- lifecycle -------------------------------------------------------

    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.hists.clear()

    # -- instruments -----------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (creates at 0)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Record the latest value of gauge ``name``."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the maximum value ever seen for gauge ``name``."""
        if not self.enabled:
            return
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into timer ``name`` (count/total/min/max)."""
        if not self.enabled:
            return
        agg = self.timers.get(name)
        if agg is None:
            self.timers[name] = [1, float(value), float(value), float(value)]
        else:
            agg[0] += 1
            agg[1] += value
            if value < agg[2]:
                agg[2] = value
            if value > agg[3]:
                agg[3] = value

    def hist(self, name: str, value: float) -> None:
        """Count ``value`` into the power-of-two bucket of hist ``name``.

        Buckets are keyed ``le_<upper>`` where ``upper`` is the smallest
        power of two >= ``value``; exact zeros land in ``le_0`` and
        negative values in ``underflow`` (a negative observation almost
        always means a measurement bug — e.g. a non-monotonic clock —
        and must not hide among legitimate zeros).  Snapshots merge by
        adding matching bucket counts, so pre-split snapshots (which
        simply have no ``underflow`` key) still merge cleanly.
        """
        if not self.enabled:
            return
        if value < 0.0:
            label = "underflow"
        elif value == 0.0:
            label = "le_0"
        else:
            upper = 2.0 ** math.ceil(math.log2(value))
            label = f"le_{upper:g}"
        buckets = self.hists.setdefault(name, {})
        buckets[label] = buckets.get(label, 0.0) + 1.0

    # -- reading ---------------------------------------------------------

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def gauge(self, name: str, default: Optional[float] = None
              ) -> Optional[float]:
        return self.gauges.get(name, default)

    def timer(self, name: str) -> Optional[Dict[str, float]]:
        agg = self.timers.get(name)
        if agg is None:
            return None
        count, total, lo, hi = agg
        return {"count": count, "total": total, "min": lo, "max": hi,
                "mean": total / count if count else 0.0}

    def hist_buckets(self, name: str) -> Dict[str, float]:
        """Bucket label -> count for hist ``name`` (empty if unknown),
        sorted by numeric upper bound."""
        buckets = self.hists.get(name, {})
        return dict(sorted(buckets.items(), key=_hist_bucket_key))

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.counters.items()))

    # -- snapshot / merge (parallel workers, manifests) ------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe copy of every instrument, sorted for stable diffs."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {name: self.timer(name)
                       for name in sorted(self.timers)},
            "hists": {name: self.hist_buckets(name)
                      for name in sorted(self.hists)},
        }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this
        registry: counters add, gauges keep the max, timers combine."""
        if not self.enabled:
            return
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, agg in snap.get("timers", {}).items():
            if agg is None:
                continue
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [agg["count"], agg["total"],
                                     agg["min"], agg["max"]]
            else:
                mine[0] += agg["count"]
                mine[1] += agg["total"]
                mine[2] = min(mine[2], agg["min"])
                mine[3] = max(mine[3], agg["max"])
        for name, buckets in snap.get("hists", {}).items():
            mine_h = self.hists.setdefault(name, {})
            for label, count in buckets.items():
                mine_h[label] = mine_h.get(label, 0.0) + count


#: The process-global registry every instrumentation site consults.
METRICS = MetricsRegistry(enabled=False)
