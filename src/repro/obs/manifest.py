"""Per-run manifests: a machine-readable record of every metrics run.

A metrics-enabled figure/report/sweep run emits one JSON manifest under
``results/runs/`` (configurable via :class:`repro.api.RunConfig`) holding
the run id, the full run configuration, seeds and repetition policy,
per-phase wall-clock, a per-subsystem counter snapshot and the cache
outcome.  The manifest is the contract downstream tooling consumes
(``repro metrics <run-id|last>`` is the human renderer; CI validates one
against :func:`validate_manifest` on every push).

Schema ``repro-run-manifest/1`` (see :data:`MANIFEST_SCHEMA` and
:data:`REQUIRED_FIELDS`)::

    {
      "schema":   "repro-run-manifest/1",
      "run_id":   "fig1-20260806-101500-1a2b3c",
      "command":  "figure:fig1",
      "created_unix": 1775111700.0,
      "config":   {... RunConfig.to_dict() ...},
      "versions": {"package": "1.0.0", "python": "3.11.8",
                   "source_fingerprint": "deadbeefdeadbeef"},
      "seeds":    {"base_seed": 1},
      "phases":   [{"name": "generate", "wall_s": 12.5}, ...],
      "metrics":  {"counters": {...}, "gauges": {...}, "timers": {...}},
      "cache":    {"outcome": "hit"|"miss"|"disabled",
                   "hits": 1, "misses": 0},
      "figure":   {... FigureData.to_dict() ...},  # optional (sweeps omit)
      "faults":   {...},                           # optional (fault runs)
      "campaign": {"spec": {...}, "points": [...], # optional (campaign
                   "totals": {...}, "cache":       #  runs; see
                   {"hit_rate": ...},              #  repro.campaign.
                   "queue_latency_s": {...}},      #  scheduler)
      "audit":    {"trace_hash": {"window_s": 1.0, # optional (trace-hash
                   "streams": {"<key>": {          #  runs; full checkpoint
                     "windows": 20, "events": 814, #  lists stay on the
                     "digest": "9f86d081..."}}},   #  in-memory RunResult)
      "mem":      {"counters": {"mem.ticks": 96,   # optional (multi-VM
                    ...},                          #  memory runs; every
                   "gauges": {                     #  mem.*-prefixed metric,
                    "mem.committed_peak_bytes":    #  see repro.virt.memory)
                    1.03e9, ...}},
      "recovery": {"outages": 2,                   # optional (fleet runs
                   "outage_s": 2834.8,             #  with recovery
                   "uploads_retried": 41,          #  activity; see
                   "uploads_lost": 1,              #  repro.fleet.recovery)
                   "vm_crashes": 23,
                   "rolled_back_s": 9188.9,
                   "degraded_windows": 1,
                   "degraded_s": 11093.0,
                   "degraded_validated": 27}
    }
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import time
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ExperimentError

#: Current manifest schema identifier.
MANIFEST_SCHEMA = "repro-run-manifest/1"

#: Default directory (relative to the working directory) for manifests.
DEFAULT_RUNS_DIR = os.path.join("results", "runs")

#: Field name -> required type(s); ``None`` in the tuple marks optional.
REQUIRED_FIELDS: Dict[str, tuple] = {
    "schema": (str,),
    "run_id": (str,),
    "command": (str,),
    "created_unix": (int, float),
    "config": (dict,),
    "versions": (dict,),
    "seeds": (dict,),
    "phases": (list,),
    "metrics": (dict,),
    "cache": (dict,),
}

_CACHE_OUTCOMES = {"hit", "miss", "disabled"}


_run_counter = itertools.count()


def new_run_id(label: str) -> str:
    """Unique, sortable, human-scannable run id.

    pid distinguishes concurrent processes; the counter distinguishes
    runs within one process (a timestamp alone collides at sub-second
    run rates).
    """
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    nonce = f"{os.getpid() & 0xFFFF:04x}{next(_run_counter) & 0xFFFF:04x}"
    return f"{label}-{stamp}-{nonce}"


def validate_manifest(manifest: Mapping[str, Any]) -> List[str]:
    """Schema check.  Returns a list of problems (empty = valid)."""
    problems: List[str] = []
    for name, types in REQUIRED_FIELDS.items():
        if name not in manifest:
            problems.append(f"missing field {name!r}")
        elif not isinstance(manifest[name], types):
            problems.append(
                f"field {name!r} has type {type(manifest[name]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if problems:
        return problems
    if manifest["schema"] != MANIFEST_SCHEMA:
        problems.append(
            f"schema is {manifest['schema']!r}, expected {MANIFEST_SCHEMA!r}"
        )
    for index, phase in enumerate(manifest["phases"]):
        if (not isinstance(phase, dict) or "name" not in phase
                or "wall_s" not in phase):
            problems.append(f"phases[{index}] lacks name/wall_s")
        elif not isinstance(phase["wall_s"], (int, float)) \
                or phase["wall_s"] < 0:
            problems.append(f"phases[{index}].wall_s is not a duration")
    metrics = manifest["metrics"]
    for section in ("counters", "gauges", "timers"):
        if section not in metrics or not isinstance(metrics[section], dict):
            problems.append(f"metrics.{section} missing or not a mapping")
    outcome = manifest["cache"].get("outcome")
    if outcome not in _CACHE_OUTCOMES:
        problems.append(
            f"cache.outcome is {outcome!r}, expected one of "
            f"{sorted(_CACHE_OUTCOMES)}"
        )
    faults = manifest.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            problems.append("faults is not a mapping")
        else:
            for name in ("retries", "timeouts", "dropped", "injected"):
                if name not in faults:
                    problems.append(f"faults.{name} missing")
    audit = manifest.get("audit")
    if audit is not None:
        if not isinstance(audit, dict):
            problems.append("audit is not a mapping")
        else:
            trace_hash = audit.get("trace_hash")
            if not isinstance(trace_hash, dict):
                problems.append("audit.trace_hash missing or not a mapping")
            elif not isinstance(trace_hash.get("streams"), dict):
                problems.append("audit.trace_hash.streams missing or not "
                                "a mapping")
    mem = manifest.get("mem")
    if mem is not None:
        if not isinstance(mem, dict):
            problems.append("mem is not a mapping")
        else:
            for name in ("counters", "gauges"):
                if not isinstance(mem.get(name), dict):
                    problems.append(f"mem.{name} missing or not a mapping")
    recovery = manifest.get("recovery")
    if recovery is not None:
        if not isinstance(recovery, dict):
            problems.append("recovery is not a mapping")
        else:
            for name in ("outages", "outage_s", "uploads_retried",
                         "uploads_lost", "vm_crashes", "rolled_back_s",
                         "degraded_windows", "degraded_s",
                         "degraded_validated"):
                if not isinstance(recovery.get(name), (int, float)):
                    problems.append(
                        f"recovery.{name} missing or not a number")
    campaign = manifest.get("campaign")
    if campaign is not None:
        if not isinstance(campaign, dict):
            problems.append("campaign is not a mapping")
        else:
            for name, types in (("spec", (dict,)), ("points", (list,)),
                                ("totals", (dict,)), ("cache", (dict,)),
                                ("queue_latency_s", (dict,))):
                if not isinstance(campaign.get(name), types):
                    problems.append(f"campaign.{name} missing or not a "
                                    f"{types[0].__name__}")
            for index, point in enumerate(campaign.get("points") or []):
                if not isinstance(point, dict) or "key" not in point \
                        or "status" not in point:
                    problems.append(
                        f"campaign.points[{index}] lacks key/status")
    return problems


def write_manifest(manifest: Mapping[str, Any],
                   runs_dir: Union[str, os.PathLike, None] = None
                   ) -> pathlib.Path:
    """Validate and atomically write one manifest; returns its path."""
    problems = validate_manifest(manifest)
    if problems:
        raise ExperimentError(
            "refusing to write an invalid run manifest: "
            + "; ".join(problems)
        )
    root = pathlib.Path(runs_dir if runs_dir is not None else DEFAULT_RUNS_DIR)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{manifest['run_id']}.json"
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    tmp.replace(path)
    return path


def list_manifests(runs_dir: Union[str, os.PathLike, None] = None
                   ) -> List[pathlib.Path]:
    """Manifest files, oldest first (mtime then name for stability)."""
    root = pathlib.Path(runs_dir if runs_dir is not None else DEFAULT_RUNS_DIR)
    if not root.is_dir():
        return []
    return sorted((p for p in root.glob("*.json")
                   if not p.name.startswith("progress-")),
                  key=lambda p: (p.stat().st_mtime, p.name))


def load_manifest(ref: str = "last",
                  runs_dir: Union[str, os.PathLike, None] = None
                  ) -> Dict[str, Any]:
    """Load a manifest by run id (exact or unique prefix), or ``"last"``
    for the newest."""
    entries = list_manifests(runs_dir)
    if ref == "last":
        if not entries:
            raise ExperimentError(
                "no run manifests found; run e.g. "
                "`repro figure fig1 --metrics` first"
            )
        path = entries[-1]
    else:
        root = pathlib.Path(
            runs_dir if runs_dir is not None else DEFAULT_RUNS_DIR)
        path = root / f"{ref}.json"
        if not path.is_file():
            matches = [p for p in entries if p.stem.startswith(ref)]
            if len(matches) == 1:
                path = matches[0]
            elif matches:
                names = ", ".join(p.stem for p in matches[:5])
                raise ExperimentError(
                    f"run id prefix {ref!r} is ambiguous: {names}"
                )
            else:
                known = ", ".join(p.stem for p in entries[-5:]) or "(none)"
                raise ExperimentError(
                    f"no run manifest {ref!r} under {root}; "
                    f"recent runs: {known}"
                )
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ExperimentError(f"corrupt run manifest {path}: {exc}") from exc


#: Schema identifier for per-point progress checkpoints.
PROGRESS_SCHEMA = "repro-progress/1"


class ProgressCheckpoint:
    """Crash-safe per-point completion record for multi-point commands.

    A figure/report/sweep command that computes several independent
    points marks each one here as it completes (atomic write-then-rename
    after every mark).  If the process is killed, rerunning with
    ``--resume`` replays the finished points from their stored payloads
    and recomputes only the rest; a run that completes normally deletes
    its checkpoint.  ``run_key`` must fingerprint everything that shapes
    the output (command, ids, repetition policy, seed, source), so a
    stale checkpoint can never leak points into a different run.
    """

    def __init__(self, run_key: str,
                 runs_dir: Union[str, os.PathLike, None] = None):
        self.run_key = run_key
        root = pathlib.Path(
            runs_dir if runs_dir is not None else DEFAULT_RUNS_DIR)
        self.path = root / f"progress-{run_key}.json"
        self._points: Dict[str, Any] = {}

    def load(self) -> int:
        """Read completed points from disk; returns how many were found.

        A missing, unreadable, or mismatched-schema file is simply an
        empty checkpoint (resume then recomputes everything).
        """
        try:
            state = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return 0
        if not isinstance(state, dict) \
                or state.get("schema") != PROGRESS_SCHEMA \
                or state.get("run_key") != self.run_key:
            return 0
        points = state.get("points")
        self._points = dict(points) if isinstance(points, dict) else {}
        return len(self._points)

    def done(self, point_key: str) -> bool:
        return point_key in self._points

    def payload(self, point_key: str) -> Any:
        return self._points.get(point_key)

    def mark(self, point_key: str, payload: Any = None) -> None:
        """Record ``point_key`` as complete (persisted immediately)."""
        self._points[point_key] = payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({
            "schema": PROGRESS_SCHEMA,
            "run_key": self.run_key,
            "updated_unix": time.time(),
            "points": self._points,
        }, default=repr), encoding="utf-8")
        tmp.replace(self.path)

    def finish(self) -> None:
        """Delete the checkpoint (the run completed normally)."""
        try:
            self.path.unlink()
        except OSError:
            pass


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """Human-readable rendering for ``repro metrics``."""
    lines = [
        f"run      {manifest.get('run_id', '?')}",
        f"command  {manifest.get('command', '?')}",
    ]
    created = manifest.get("created_unix")
    if isinstance(created, (int, float)):
        lines.append("created  " + time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(created)))
    config = manifest.get("config", {})
    if config:
        kv = " ".join(f"{k}={v}" for k, v in sorted(config.items())
                      if v is not None and v is not False)
        lines.append(f"config   {kv or '(defaults)'}")
    cache = manifest.get("cache", {})
    lines.append(f"cache    {cache.get('outcome', '?')}"
                 f" (hits={cache.get('hits', 0)}"
                 f" misses={cache.get('misses', 0)})")
    faults = manifest.get("faults")
    if faults and any(faults.get(k) for k in
                      ("total_injected", "retries", "timeouts", "dropped")):
        quarantined = int(manifest.get("metrics", {}).get(
            "counters", {}).get("parallel.payload_quarantined", 0))
        lines.append(
            f"faults   injected={faults.get('total_injected', 0)}"
            f" retries={faults.get('retries', 0)}"
            f" timeouts={faults.get('timeouts', 0)}"
            f" dropped={len(faults.get('dropped', []))}"
            f" quarantined={quarantined}")
        injected = faults.get("injected") or {}
        for site in sorted(injected):
            if injected[site]:
                lines.append(f"  {site:<36} {injected[site]:>14}")
    recovery = manifest.get("recovery")
    if recovery:
        lines.append(
            f"recovery outages={recovery.get('outages', 0)}"
            f" ({recovery.get('outage_s', 0.0) / 3600:.1f}h down)"
            f" uploads-retried={recovery.get('uploads_retried', 0)}"
            f" lost={recovery.get('uploads_lost', 0)}"
            f" vm-crashes={recovery.get('vm_crashes', 0)}"
            f" rolled-back={recovery.get('rolled_back_s', 0.0) / 3600:.1f}h"
            f" degraded={recovery.get('degraded_windows', 0)} window(s)"
            f"/{recovery.get('degraded_validated', 0)} quorum-of-1")
    campaign = manifest.get("campaign")
    if campaign:
        totals = campaign.get("totals", {})
        cache_agg = campaign.get("cache", {})
        latency = campaign.get("queue_latency_s", {})
        rate = cache_agg.get("hit_rate")
        rate_text = f"{rate:.0%}" if isinstance(rate, (int, float)) else "n/a"
        lines.append(
            f"campaign {totals.get('points', 0)} point(s):"
            f" computed={totals.get('computed', 0)}"
            f" resumed={totals.get('resumed', 0)}"
            f" deduped={totals.get('deduped', 0)}"
            f" cache-hit-rate={rate_text}"
            f" queue-latency mean={latency.get('mean', 0.0):.3f}s"
            f" max={latency.get('max', 0.0):.3f}s")
    mem = manifest.get("mem")
    if mem:
        counters = mem.get("counters", {})
        gauges = mem.get("gauges", {})
        peak = gauges.get("mem.committed_peak_bytes")
        peak_text = f" committed-peak={peak / 2 ** 20:.0f}MB" \
            if isinstance(peak, (int, float)) else ""
        lines.append(
            f"mem      ticks={counters.get('mem.ticks', 0)}"
            f" reclaim-pages={counters.get('mem.reclaim.pages', 0)}"
            f" fault-pages={counters.get('mem.fault.pages', 0)}"
            f"{peak_text}")
    audit = manifest.get("audit")
    trace_hash = (audit or {}).get("trace_hash") or {}
    streams = trace_hash.get("streams") or {}
    if streams:
        events = sum(int(s.get("events", 0)) for s in streams.values())
        windows = sum(int(s.get("windows", 0)) for s in streams.values())
        lines.append(
            f"audit    trace-hash streams={len(streams)}"
            f" windows={windows} events={events}"
            f" (window={trace_hash.get('window_s', '?')}s)")
    phases = manifest.get("phases", [])
    if phases:
        lines.append("phases:")
        for phase in phases:
            lines.append(f"  {phase.get('name', '?'):<24}"
                         f" {phase.get('wall_s', 0.0):9.3f}s")
    metrics = manifest.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        for name, value in sorted(counters.items()):
            text = f"{value:.0f}" if float(value).is_integer() \
                else f"{value:.6g}"
            lines.append(f"  {name:<36} {text:>14}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<36} {value:>14.6g}")
    timers = metrics.get("timers", {})
    if timers:
        lines.append("timers:")
        for name, agg in sorted(timers.items()):
            if not agg:
                continue
            lines.append(
                f"  {name:<36} n={agg['count']:<7.0f}"
                f" total={agg['total']:.6g}"
                f" mean={agg['mean']:.6g}"
                f" max={agg['max']:.6g}"
            )
    hists = metrics.get("hists", {})
    if hists:
        lines.append("hists:")
        for name, buckets in sorted(hists.items()):
            total = sum(buckets.values())
            body = " ".join(f"{label}:{count:.0f}"
                            for label, count in buckets.items())
            lines.append(f"  {name:<36} n={total:.0f}  {body}")
    return "\n".join(lines)
