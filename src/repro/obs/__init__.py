"""repro.obs — observability: run metrics and per-run manifests.

:mod:`repro.obs.metrics` holds the process-global counter/gauge/timer
registry (:data:`~repro.obs.metrics.METRICS`) that every subsystem's
instrumentation sites feed; :mod:`repro.obs.manifest` turns a finished
run into a machine-readable JSON record under ``results/runs/``.

Metrics are off by default and cost one guarded branch per site when
disabled.  Enable them per run through
``repro.api.RunConfig(metrics=True)`` or ``repro figure ... --metrics``.
"""

from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.manifest import (
    DEFAULT_RUNS_DIR,
    MANIFEST_SCHEMA,
    list_manifests,
    load_manifest,
    new_run_id,
    render_manifest,
    validate_manifest,
    write_manifest,
)

__all__ = [
    "DEFAULT_RUNS_DIR",
    "MANIFEST_SCHEMA",
    "METRICS",
    "MetricsRegistry",
    "list_manifests",
    "load_manifest",
    "new_run_id",
    "render_manifest",
    "validate_manifest",
    "write_manifest",
]
