"""Event primitives for the discrete-event kernel.

Two kinds of "event" exist and the distinction matters:

* :class:`EventHandle` — a *scheduled callback* sitting in the engine's
  time-ordered heap.  It fires exactly once at its timestamp unless
  cancelled.  This is the low-level mechanism everything else builds on.

* :class:`SimEvent` — a *one-shot condition variable* with no intrinsic
  time.  Processes wait on it; some other party triggers it (``succeed`` /
  ``fail``).  Composition helpers :class:`AllOf` and :class:`AnyOf` build
  barrier/race conditions from several ``SimEvent`` instances.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simcore.engine import Engine


class EventHandle:
    """A cancellable callback scheduled on the engine heap.

    Instances are created by :meth:`Engine.schedule` / ``schedule_at`` and
    should be treated as opaque apart from :meth:`cancel` and
    :attr:`active`.  Heap ordering lives in the engine's ``(time, seq)``
    tuple keys, not here — handles are payload, never compared.
    """

    __slots__ = ("time", "seq", "fn", "args", "_cancelled", "daemon",
                 "_on_cancel")

    def __init__(self, time: float, seq: int, fn: Callable[..., None],
                 args: tuple, daemon: bool = False,
                 on_cancel: Optional[Callable[[], None]] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False
        # Daemon events (periodic housekeeping like the scheduler's
        # balance-set scan) do not keep Engine.run() alive on their own.
        self.daemon = daemon
        self._on_cancel = on_cancel

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; safe after fire."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
            self._on_cancel = None
        # Drop references so cancelled-but-still-heaped handles don't pin
        # large object graphs alive until their timestamp is reached.
        self.fn = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        return not self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "active"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class SimEvent:
    """A one-shot condition: untriggered until ``succeed()`` or ``fail()``.

    Waiters register callbacks with :meth:`add_callback`; process objects
    use this under the hood when a generator yields the event.  Triggering
    is immediate (same simulation instant): callbacks run synchronously in
    registration order, which keeps causality obvious in traces.
    """

    __slots__ = ("engine", "_triggered", "_ok", "_value", "_callbacks")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._triggered = False
        self._ok: Optional[bool] = None
        self._value: Any = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when triggered via ``succeed``.  Raises if untriggered."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """Payload passed to ``succeed``, or the exception given to ``fail``."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger successfully with an optional payload."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Trigger as failed; waiters receive ``exc`` (processes re-raise it)."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    # -- waiting ---------------------------------------------------------

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        """Register ``fn(event)``; fires immediately if already triggered."""
        if self._triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state}>"


class Timeout(SimEvent):
    """A ``SimEvent`` that auto-succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine)
        self.delay = delay
        engine.schedule(delay, self.succeed, value)


class AllOf(SimEvent):
    """Barrier: succeeds when *all* child events have succeeded.

    Fails as soon as any child fails (remaining children are ignored).
    Value is the list of child values in construction order.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]):
        super().__init__(engine)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: SimEvent) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(SimEvent):
    """Race: succeeds when the *first* child triggers.

    Value is ``(index, child_value)`` of the winning child.  A failing
    first child fails the race.
    """

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]):
        super().__init__(engine)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_cb(index))

    def _make_cb(self, index: int) -> Callable[[SimEvent], None]:
        def cb(child: SimEvent) -> None:
            if self._triggered:
                return
            if child.ok:
                self.succeed((index, child.value))
            else:
                self.fail(child.value)

        return cb
