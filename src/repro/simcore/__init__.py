"""Discrete-event simulation kernel.

Public surface:

* :class:`Engine` — the time-ordered callback loop,
* :class:`SimEvent`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` —
  waitable conditions,
* :class:`SimProcess`, :class:`Interrupted` — generator processes,
* :class:`Resource`, :class:`Mutex`, :class:`Store` — shared resources,
* :class:`RngStreams`, :func:`derive_rep_seed` — deterministic randomness,
* :class:`Tracer`, :class:`TraceRecord` — structured tracing.
"""

from repro.simcore.engine import Engine
from repro.simcore.events import AllOf, AnyOf, EventHandle, SimEvent, Timeout
from repro.simcore.process import Interrupted, SimProcess
from repro.simcore.resources import Mutex, Request, Resource, Store
from repro.simcore.rng import RngStreams, derive_rep_seed
from repro.simcore.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "EventHandle",
    "Interrupted",
    "Mutex",
    "Request",
    "Resource",
    "RngStreams",
    "SimEvent",
    "SimProcess",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "derive_rep_seed",
]
