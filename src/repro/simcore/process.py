"""Generator-based simulation processes.

A process is a Python generator that yields *waitables*:

* ``engine.timeout(dt)`` — sleep for simulated time,
* any :class:`SimEvent` (including another :class:`SimProcess`) — wait for
  it; the ``yield`` expression evaluates to the event's value, and a failed
  event re-raises its exception inside the generator,
* ``AllOf`` / ``AnyOf`` compositions.

A :class:`SimProcess` is itself a :class:`SimEvent` that triggers when the
generator returns (value = ``StopIteration`` value) or raises.  Processes
support cooperative interruption via :meth:`interrupt`, which throws
:class:`Interrupted` into the generator at its current yield point.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.errors import SimulationError
from repro.simcore.events import SimEvent


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`SimProcess.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimProcess(SimEvent):
    """Drives a generator, suspending on yielded waitables.

    The first resume is scheduled at the current instant (not run inline),
    so creating a process never re-enters user code synchronously.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_started", "_resume_scheduled")

    def __init__(self, engine, gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise SimulationError(f"process body must be a generator, got {gen!r}")
        super().__init__(engine)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[SimEvent] = None
        self._started = False
        self._resume_scheduled = engine.schedule(0.0, self._first_resume)

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self.triggered

    def _first_resume(self) -> None:
        self._resume_scheduled = None
        self._started = True
        self._advance(None, None)

    def _on_wait_complete(self, event: SimEvent) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        if event.ok:
            self._advance(event.value, None)
        else:
            self._advance(None, event.value)

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        """Resume the generator with a value or throw, then re-suspend."""
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupted as interrupt:
            # An uncaught interrupt terminates the process "successfully
            # cancelled": treat as failure so waiters notice.
            self.fail(interrupt)
            return
        except Exception as error:
            self.fail(error)
            return

        if not isinstance(target, SimEvent):
            self.gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected a SimEvent"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_complete)

    # -- interruption --------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point.

        No-op on finished processes.  A process that has not yet had its
        first resume is simply cancelled.
        """
        if self.triggered:
            return
        if not self._started:
            if self._resume_scheduled is not None:
                self._resume_scheduled.cancel()
                self._resume_scheduled = None
            self.gen.close()
            self.fail(Interrupted(cause))
            return
        waiting = self._waiting_on
        self._waiting_on = None
        if waiting is not None:
            # Detach: the stale wait callback checks self.triggered, and we
            # may re-wait on the same event later, so just let it dangle.
            pass
        # Deliver the interrupt at the current instant via the engine so we
        # never re-enter the generator from inside its own call stack.
        self.engine.schedule(0.0, self._deliver_interrupt, cause)

    def _deliver_interrupt(self, cause: Any) -> None:
        if self.triggered:
            return
        self._advance(None, Interrupted(cause))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.triggered else ("waiting" if self._waiting_on else "ready")
        return f"<SimProcess {self.name!r} {state}>"
