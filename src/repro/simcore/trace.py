"""Lightweight structured tracing for simulator debugging and tests.

A :class:`Tracer` collects ``TraceRecord`` entries (timestamp, category,
fields).  It is disabled by default so the hot path costs a single branch;
tests enable it to assert on causality (e.g. "the scheduler preempted
thread X before event Y").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when, what category, and arbitrary fields."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:12.6f}] {self.category:<24} {kv}"


class Tracer:
    """Collects trace records; optionally filters by category.

    Hot-path contract: callers on performance-critical paths guard with
    ``if tracer.enabled:`` before building ``record(...)`` kwargs, so a
    disabled tracer costs a single attribute read per site (``record``
    itself also early-returns, as a second line of defence).
    """

    __slots__ = ("enabled", "categories", "max_records", "records",
                 "dropped", "_time_source")

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[set] = None,
        max_records: int = 1_000_000,
    ):
        self.enabled = enabled
        self.categories = categories
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._time_source: Optional[Callable[[], float]] = None

    def bind_clock(self, time_source: Callable[[], float]) -> None:
        """Attach the engine clock so callers need not pass timestamps."""
        self._time_source = time_source

    def record(self, category: str, time: Optional[float] = None, **fields: Any) -> None:
        """Append a record (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        if time is None:
            time = self._time_source() if self._time_source is not None else 0.0
        self.records.append(TraceRecord(time, category, dict(fields)))

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        """Render records as text (for failing-test diagnostics)."""
        rows = self.records if limit is None else self.records[:limit]
        body = "\n".join(str(r) for r in rows)
        if self.dropped:
            body += f"\n... ({self.dropped} records dropped)"
        return body

    def digest(self) -> str:
        """Stable 16-hex-digit digest of the recorded trace.

        Two runs with identical traces produce identical digests (record
        rendering sorts fields), so tests can assert whole-trace equality
        without storing both traces.  Complements the engine-level
        windowed hashing in :mod:`repro.audit.tracehash`, which works
        without any tracer enabled.
        """
        h = hashlib.sha256()
        for record in self.records:
            h.update(str(record).encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()[:16]
