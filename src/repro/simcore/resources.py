"""Shared-resource primitives: counted semaphores, mutexes and stores.

These are deliberately simpy-flavoured because that shape composes well
with generator processes:

* :class:`Resource` — ``capacity`` concurrent holders; ``request()``
  returns a :class:`SimEvent` to yield on; ``release()`` hands the slot to
  the longest-waiting (optionally highest-priority) requester.
* :class:`Store` — an unbounded (or bounded) FIFO of items with blocking
  ``get``; used for message queues (BOINC RPC, NIC queues).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simcore.engine import Engine
from repro.simcore.events import SimEvent


class Request(SimEvent):
    """A pending resource acquisition; triggers when the slot is granted."""

    __slots__ = ("resource", "priority", "seq", "cancelled")

    def __init__(self, resource: "Resource", priority: float, seq: int):
        super().__init__(resource.engine)
        self.resource = resource
        self.priority = priority
        self.seq = seq
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op once granted)."""
        if not self.triggered:
            self.cancelled = True

    def __lt__(self, other: "Request") -> bool:
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq


class Resource:
    """Counted resource with priority-FIFO granting.

    Lower ``priority`` values are served first; equal priorities are FIFO.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: List[Request] = []
        self._seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return sum(1 for r in self._queue if not r.cancelled)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; yield the returned event to wait for the grant."""
        req = Request(self, priority, self._seq)
        self._seq += 1
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            req.succeed(self)
        else:
            heapq.heappush(self._queue, req)
        return req

    def release(self) -> None:
        """Return a slot and grant it to the best waiting request."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        while self._queue:
            req = heapq.heappop(self._queue)
            if req.cancelled:
                continue
            self._in_use += 1
            req.succeed(self)
            break

    def acquire(self, priority: float = 0.0):
        """Generator helper: ``yield from resource.acquire()``."""
        yield self.request(priority)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
            f" queued={self.queue_length}>"
        )


class Mutex(Resource):
    """Capacity-1 resource, for readability at call sites."""

    def __init__(self, engine: Engine, name: str = "mutex"):
        super().__init__(engine, capacity=1, name=name)


class Store:
    """FIFO item store with blocking ``get`` and optional capacity bound."""

    def __init__(self, engine: Engine, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[Tuple[SimEvent, Any]] = deque()

    @property
    def level(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> SimEvent:
        """Insert an item; the returned event triggers once stored."""
        done = SimEvent(self.engine)
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((done, item))
            return done
        self._deliver(item)
        done.succeed(None)
        return done

    def _deliver(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> SimEvent:
        """Remove and return the oldest item; blocks (event) when empty."""
        ev = SimEvent(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._drain_putters()
            return True, item
        return False, None

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            done, item = self._putters.popleft()
            self._deliver(item)
            done.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Store {self.name!r} level={self.level}>"
