"""The discrete-event engine: a deterministic time-ordered callback loop.

Design notes
------------
* The heap holds plain ``(time, seq, EventHandle)`` tuples.  ``seq`` is a
  monotone insertion counter, so same-instant events fire in scheduling
  order — this makes every run bit-for-bit deterministic for a given
  seed, which the experiment harness relies on (repetitions differ only
  through their RNG streams).  Tuple keys keep heap sift comparisons in
  C (``seq`` is unique, so the handle itself is never compared), which is
  the single hottest operation in the simulator.
* Cancellation is O(1): handles are flagged and skipped when popped
  (lazy deletion), the standard technique for binary-heap timer wheels.
* :meth:`run` inlines the pop/dispatch loop (rather than calling
  :meth:`step` per event) and drains same-instant batches without
  re-touching the clock; :meth:`step` remains the one-event-at-a-time
  API for tests and debuggers.
* The engine knows nothing about processes, CPUs or OSes; those layers
  build on :meth:`schedule`/:meth:`schedule_at` plus ``SimEvent``.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.audit.tracehash import TRACE_HASH
from repro.errors import SimulationError
from repro.obs.metrics import METRICS
from repro.simcore.events import AllOf, AnyOf, EventHandle, SimEvent, Timeout
from repro.simcore.trace import Tracer


class Engine:
    """Owns simulated time and the pending-event heap."""

    def __init__(self, *, trace: Optional[Tracer] = None, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._non_daemon_pending = 0
        # Bound once: building a bound method per schedule() is measurable
        # on the hot path.
        self._decrement_non_daemon = self._make_decrement()
        self.trace = trace if trace is not None else Tracer(enabled=False)
        # Audit trace-hash stream: None unless the process-global
        # recorder is enabled, so the disabled cost is this one lookup
        # plus an `is None` branch per dispatched event.
        self._thash = TRACE_HASH.open_stream()

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (cancelled pops excluded)."""
        return self._processed

    @property
    def pending_count(self) -> int:
        """Heap size including lazily-deleted (cancelled) entries."""
        return len(self._heap)

    # -- scheduling --------------------------------------------------------

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any,
                    daemon: bool = False) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        ``daemon=True`` marks housekeeping events that should not keep
        :meth:`run` alive once all real work has drained (e.g. the
        scheduler's periodic balance-set scan).
        """
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event in the past: t={time} < now={self._now}"
            )
        on_cancel = None
        if not daemon:
            self._non_daemon_pending += 1
            on_cancel = self._decrement_non_daemon
        when = time if time > self._now else self._now
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(when, seq, fn, args, daemon, on_cancel)
        heappush(self._heap, (when, seq, handle))
        return handle

    def _make_decrement(self) -> Callable[[], None]:
        def decrement() -> None:
            self._non_daemon_pending -= 1

        return decrement

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any,
                 daemon: bool = False) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` seconds."""
        # Inlined schedule_at: relative delays cannot land in the past, so
        # the past-check and the when/now clamp are statically satisfied.
        # This is the simulator's single most-called function.
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        on_cancel = None
        if not daemon:
            self._non_daemon_pending += 1
            on_cancel = self._decrement_non_daemon
        when = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(when, seq, fn, args, daemon, on_cancel)
        heappush(self._heap, (when, seq, handle))
        return handle

    # -- event constructors ------------------------------------------------

    def event(self) -> SimEvent:
        """A fresh untriggered one-shot condition."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: Generator, name: str = "") -> "SimProcess":
        """Start a generator-based process (see :mod:`repro.simcore.process`)."""
        from repro.simcore.process import SimProcess

        return SimProcess(self, gen, name=name)

    # -- main loop ----------------------------------------------------------

    def step(self) -> bool:
        """Fire the next non-cancelled event.  Returns False when empty."""
        heap = self._heap
        while heap:
            when, seq, handle = heapq.heappop(heap)
            if handle._cancelled:
                continue
            if when < self._now - 1e-12:
                raise SimulationError("heap yielded an event from the past")
            if not handle.daemon:
                self._non_daemon_pending -= 1
                handle._on_cancel = None  # fired: a late cancel() is a no-op
            self._now = when
            self._processed += 1
            if self._thash is not None:
                self._thash.update(when, seq, handle.fn)
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        When ``until`` is given and the heap still has later events, the
        clock is advanced exactly to ``until`` (pending events remain
        schedulable for a subsequent ``run``).  Returns the final time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        # Metrics follow the Tracer guard contract: the flag is hoisted
        # into a local and all accounting accumulates into plain locals,
        # so a disabled registry costs one branch per dispatched batch.
        metrics_on = METRICS.enabled
        thash = self._thash
        if metrics_on:
            from time import perf_counter

            wall_started = perf_counter()  # repro: allow-wall-clock (metrics)
            start_processed = self._processed
            METRICS.gauge_max("engine.heap_size", len(heap))
        batches = 0
        batch_events = 0
        batch_max = 0
        try:
            if until is None and not metrics_on and thash is None:
                # Inlined hot loop (one Python frame for the whole drain).
                # Daemon housekeeping must not keep the world spinning, so
                # the non-daemon count is re-checked before every dispatch.
                while self._non_daemon_pending > 0 and heap:
                    when, _seq, handle = pop(heap)
                    if handle._cancelled:
                        continue
                    if when < self._now - 1e-12:
                        raise SimulationError(
                            "heap yielded an event from the past")
                    if not handle.daemon:
                        self._non_daemon_pending -= 1
                        handle._on_cancel = None
                    self._now = when
                    self._processed += 1
                    handle.fn(*handle.args)
                    # Same-instant batch: deliver everything already due at
                    # `when` (timeout fan-outs, zero-delay resumes) without
                    # touching the clock again.
                    while (heap and heap[0][0] == when
                           and self._non_daemon_pending > 0):
                        _w, _s, handle = pop(heap)
                        if handle._cancelled:
                            continue
                        if not handle.daemon:
                            self._non_daemon_pending -= 1
                            handle._on_cancel = None
                        self._processed += 1
                        handle.fn(*handle.args)
            elif until is None:
                # Instrumented copy of the drain loop (metrics and/or
                # trace-hashing on) — kept separate so the plain path
                # above stays byte-for-byte the original (the batch
                # bookkeeping would otherwise cost a few per-event ops
                # even when disabled).
                while self._non_daemon_pending > 0 and heap:
                    when, _seq, handle = pop(heap)
                    if handle._cancelled:
                        continue
                    if when < self._now - 1e-12:
                        raise SimulationError(
                            "heap yielded an event from the past")
                    if not handle.daemon:
                        self._non_daemon_pending -= 1
                        handle._on_cancel = None
                    self._now = when
                    self._processed += 1
                    if thash is not None:
                        thash.update(when, _seq, handle.fn)
                    handle.fn(*handle.args)
                    in_batch = 1
                    while (heap and heap[0][0] == when
                           and self._non_daemon_pending > 0):
                        _w, _s, handle = pop(heap)
                        if handle._cancelled:
                            continue
                        if not handle.daemon:
                            self._non_daemon_pending -= 1
                            handle._on_cancel = None
                        self._processed += 1
                        if thash is not None:
                            thash.update(_w, _s, handle.fn)
                        handle.fn(*handle.args)
                        in_batch += 1
                    batches += 1
                    batch_events += in_batch
                    if in_batch > batch_max:
                        batch_max = in_batch
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is before now={self._now}"
                    )
                while heap:
                    when, _seq, handle = heap[0]
                    if handle._cancelled:
                        pop(heap)
                        continue
                    if when > until:
                        break
                    pop(heap)
                    if not handle.daemon:
                        self._non_daemon_pending -= 1
                        handle._on_cancel = None
                    self._now = when
                    self._processed += 1
                    if thash is not None:
                        thash.update(when, _seq, handle.fn)
                    handle.fn(*handle.args)
                self._now = max(self._now, until)
        finally:
            self._running = False
        if metrics_on:
            dispatched = self._processed - start_processed
            wall = perf_counter() - wall_started  # repro: allow-wall-clock
            METRICS.inc("engine.runs")
            METRICS.inc("engine.events_dispatched", dispatched)
            METRICS.observe("engine.run_wall_s", wall)
            METRICS.gauge_max("engine.heap_size", len(heap))
            if wall > 0.0:
                METRICS.gauge_max("engine.events_per_sec", dispatched / wall)
            if batches:
                # mean same-instant batch size = events / batches
                METRICS.inc("engine.same_instant_batches", batches)
                METRICS.inc("engine.same_instant_events", batch_events)
                METRICS.gauge_max("engine.batch_events_max", batch_max)
        return self._now

    def run_until_event(self, event: SimEvent, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; raise on failure or time limit.

        Convenience for tests and experiment drivers: returns the event's
        value, re-raises its exception on failure, and raises
        :class:`SimulationError` if the heap drains or ``limit`` passes
        without the event triggering.
        """
        # Delta-based accounting (see run()): zero per-event cost when
        # metrics are disabled, one counter fold per call when enabled.
        metrics_on = METRICS.enabled
        if metrics_on:
            from time import perf_counter

            wall_started = perf_counter()  # repro: allow-wall-clock (metrics)
            start_processed = self._processed
            METRICS.gauge_max("engine.heap_size", len(self._heap))
        while not event.triggered:
            if limit is not None and self._now >= limit:
                raise SimulationError(f"time limit {limit}s reached before event")
            if self._non_daemon_pending <= 0:
                raise SimulationError(
                    "event queue drained (only daemon housekeeping left) "
                    "before event triggered"
                )
            if not self.step():
                raise SimulationError("event queue drained before event triggered")
        if metrics_on:
            dispatched = self._processed - start_processed
            wall = perf_counter() - wall_started  # repro: allow-wall-clock
            METRICS.inc("engine.runs")
            METRICS.inc("engine.events_dispatched", dispatched)
            METRICS.observe("engine.run_wall_s", wall)
            METRICS.gauge_max("engine.heap_size", len(self._heap))
            if wall > 0.0:
                METRICS.gauge_max("engine.events_per_sec", dispatched / wall)
        if not event.ok:
            raise event.value
        return event.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.6f} pending={len(self._heap)}>"
