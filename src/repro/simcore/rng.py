"""Deterministic named random-number streams.

Every stochastic element of the simulator (disk seek jitter, packet
jitter, workload data, scheduler tick phase, ...) draws from its own named
substream derived from a single root seed.  This gives:

* bit-for-bit reproducibility for a (root_seed, stream_name) pair,
* independence between subsystems — adding a new consumer of randomness
  never perturbs existing streams,
* cheap per-repetition variation: repetition *k* uses root seed
  ``derive_rep_seed(root, k)``.

Streams are ``numpy.random.Generator`` instances (PCG64) seeded through
``SeedSequence`` with a stable hash of the stream name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_to_words(name: str) -> list:
    """Stable 128-bit digest of a stream name as four uint32 words."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def derive_rep_seed(root_seed: int, repetition: int) -> int:
    """Root seed for repetition ``repetition`` of an experiment."""
    if repetition < 0:
        raise ValueError(f"repetition must be >= 0, got {repetition}")
    payload = f"{root_seed}:{repetition}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "little")


class RngStreams:
    """Factory and cache of named substreams off one root seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=tuple(_name_to_words(name))
            )
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    # -- convenience draws -------------------------------------------------

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def normal(self, name: str, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self.stream(name).normal(mean, std))

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """Multiplicative jitter with unit median: ``exp(N(0, sigma))``."""
        if sigma == 0.0:
            return 1.0
        return float(np.exp(self.stream(name).normal(0.0, sigma)))

    def exponential(self, name: str, mean: float) -> float:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def integers(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def bytes(self, name: str, n: int) -> bytes:
        """``n`` pseudorandom bytes (workload payloads)."""
        return self.stream(name).bytes(n)

    def fork(self, name: str) -> "RngStreams":
        """A child stream-space, e.g. one per VM instance."""
        child_seed = int.from_bytes(
            hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()[:8], "little"
        )
        return RngStreams(child_seed)
