"""A volunteer desktop: machine + host OS + VM + BOINC client + churn.

Models what the paper's conclusion is really about: an ordinary desktop
whose owner donates spare cycles through a sandboxed VM.  Each volunteer

* hosts a Windows kernel on its own Core 2 Duo,
* boots a Linux guest at idle priority running the BOINC client,
* optionally runs *owner activity* (host threads that come and go),
* suffers availability churn: crashes/shutdowns at exponential
  intervals, losing everything since the last BOINC checkpoint, then
  reboots after a downtime and resumes from host-persistent state —
  the fault-tolerance story §1 of the paper attributes to VM
  checkpointing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.errors import ReproError
from repro.hardware.cpu import MIX_SEVENZIP
from repro.hardware.machine import Machine
from repro.hardware.specs import MachineSpec, core2duo_e6600
from repro.osmodel.kernel import Kernel, windows_xp_params
from repro.osmodel.threads import PRIORITY_NORMAL
from repro.simcore.engine import Engine
from repro.simcore.process import Interrupted, SimProcess
from repro.simcore.rng import RngStreams
from repro.virt.profiles import HypervisorProfile, get_profile
from repro.virt.vm import VirtualMachine, VmConfig, VmState
from repro.workloads.boinc import BoincClient, BoincServer
from repro.workloads.einstein import EinsteinProgress, EinsteinWorkunit


@dataclass(frozen=True)
class VolunteerConfig:
    """One volunteer's character."""

    name: str = "desktop-0"
    hypervisor: str = "vmplayer"
    mtbf_s: Optional[float] = None     # mean uptime; None = never fails
    downtime_s: float = 120.0          # mean off-line time after a failure
    owner_duty_cycle: float = 0.0      # fraction of time the owner computes
    owner_session_s: float = 300.0     # mean owner-activity session length
    checkpoint_interval_s: float = 60.0
    spec: MachineSpec = field(default_factory=lambda: core2duo_e6600())

    def __post_init__(self):
        from repro.errors import ExperimentError

        if not 0.0 <= self.owner_duty_cycle <= 1.0:
            raise ExperimentError(
                "owner_duty_cycle is a fraction of time and must lie in "
                f"[0, 1], got {self.owner_duty_cycle!r}"
            )
        for attr in ("downtime_s", "owner_session_s",
                     "checkpoint_interval_s"):
            value = getattr(self, attr)
            if value <= 0:
                raise ExperimentError(
                    f"{attr} must be positive, got {value!r}"
                )
        if self.mtbf_s is not None and self.mtbf_s <= 0:
            raise ExperimentError(
                f"mtbf_s must be positive (or None = never fails), "
                f"got {self.mtbf_s!r}"
            )


@dataclass
class VolunteerStats:
    workunits_done: int = 0
    templates_done: int = 0
    crashes: int = 0
    templates_lost: int = 0
    uptime_s: float = 0.0
    downtime_s: float = 0.0


class Volunteer:
    """One churning volunteer node attached to a project server."""

    def __init__(self, engine: Engine, server: BoincServer,
                 config: VolunteerConfig, rng: RngStreams):
        self.engine = engine
        self.server = server
        self.config = config
        self.rng = rng.fork(config.name)
        self.machine = Machine(
            engine, config.spec.with_name(config.name), self.rng.fork("hw")
        )
        self.kernel = Kernel(engine, self.machine, windows_xp_params(),
                             name=config.name)
        self.profile: HypervisorProfile = get_profile(config.hypervisor)
        self.stats = VolunteerStats()
        # host-persistent client state, surviving VM crashes (the vdisk
        # image survives on the host disk; see DESIGN.md)
        self._persist: Dict[str, object] = {}
        self.vm: Optional[VirtualMachine] = None
        self._client: Optional[BoincClient] = None
        self._life: Optional[SimProcess] = None
        self._running = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> SimProcess:
        if self._running:
            raise ReproError(f"{self.config.name}: already started")
        self._running = True
        self._life = self.engine.process(self._live(),
                                         name=f"{self.config.name}.life")
        if self.config.owner_duty_cycle > 0:
            self.engine.process(self._owner_activity(),
                                name=f"{self.config.name}.owner")
        return self._life

    def stop(self) -> None:
        self._running = False
        if self._client is not None:
            # bank the live session's progress before tearing it down
            self.stats.workunits_done += self._client.workunits_done
            self.stats.templates_done += self._client.templates_done
            if self._client.current_progress is not None:
                self.stats.templates_done += (
                    self._client.current_progress.next_template
                )
            self._client = None
        if self._life is not None and not self._life.triggered:
            self._life.interrupt("grid stopped")
        if self.vm is not None and self.vm.state is VmState.RUNNING:
            self.vm.shutdown()

    # -- internals ------------------------------------------------------------

    def _mirror_checkpoint(self, progress: EinsteinProgress) -> None:
        self._persist["progress"] = progress.as_dict()

    def _live(self) -> Generator:
        """Boot / volunteer / crash / recover, forever."""
        try:
            while self._running:
                up_started = self.engine.now
                session = self.engine.process(self._volunteer_session(),
                                              name=f"{self.config.name}.vm")
                waits = [session]
                crash_timer = None
                if self.config.mtbf_s:
                    uptime = self.rng.exponential("mtbf", self.config.mtbf_s)
                    crash_timer = self.engine.timeout(uptime)
                    waits.append(crash_timer)
                outcome = yield self.engine.any_of(waits)
                self.stats.uptime_s += self.engine.now - up_started
                if crash_timer is not None and outcome[0] == 1:
                    self._crash(session)
                    down = self.rng.exponential("downtime",
                                                self.config.downtime_s)
                    down_started = self.engine.now
                    yield self.engine.timeout(down)
                    self.stats.downtime_s += self.engine.now - down_started
                    continue
                return  # server ran dry: the volunteer retires
        except Interrupted:
            return

    def _crash(self, session: SimProcess) -> None:
        """Power failure: the VM and all un-checkpointed progress die."""
        self.stats.crashes += 1
        client = self._client
        if client is not None and client.current_progress is not None:
            saved = self._persist.get("progress")
            saved_templates = (saved["next_template"]  # type: ignore[index]
                               if saved and saved["workunit_id"]
                               == client.current_progress.workunit_id else 0)
            lost = client.current_progress.next_template - saved_templates
            self.stats.templates_lost += max(0, int(lost))
            # remember which workunit we were on (assignment survives)
            self._persist["workunit"] = client.current_workunit
        if client is not None:
            # bank what the dying session achieved
            self.stats.workunits_done += client.workunits_done
            self.stats.templates_done += client.templates_done
            self._client = None
        session.interrupt("power failure")
        if self.vm is not None and self.vm.state is not VmState.STOPPED:
            self.vm.shutdown()
        self.vm = None

    def _volunteer_session(self) -> Generator:
        """One VM incarnation: boot, resume if possible, volunteer."""
        vm = VirtualMachine(
            self.kernel, self.profile,
            VmConfig(name=f"{self.config.name}-vm"),
        )
        self.vm = vm
        yield from vm.boot()
        ctx = vm.guest_context()
        client = BoincClient(
            self.server, client_id=self.config.name,
            checkpoint_interval_s=self.config.checkpoint_interval_s,
            checkpoint_hook=self._mirror_checkpoint,
        )
        self._client = client
        resume_workunit = self._persist.pop("workunit", None)
        resume = None
        saved = self._persist.get("progress")
        if resume_workunit is not None and saved is not None:
            progress = EinsteinProgress.from_dict(saved)  # type: ignore[arg-type]
            if progress.workunit_id == resume_workunit.workunit_id:
                resume = progress
        result = yield from client.run(
            ctx, resume=resume,
            resume_workunit=resume_workunit,
        )
        self.stats.workunits_done += client.workunits_done
        self.stats.templates_done += client.templates_done
        self._client = None
        vm.shutdown()
        self.vm = None
        return result

    def _owner_activity(self) -> Generator:
        """The machine's owner: bursts of host compute at normal class."""
        duty = self.config.owner_duty_cycle
        thread = self.kernel.spawn_thread(f"{self.config.name}.owner",
                                          PRIORITY_NORMAL)
        ctx = self.kernel.context(thread)
        try:
            while self._running:
                idle = self.rng.exponential(
                    "owner.idle", self.config.owner_session_s * (1 - duty) / max(duty, 1e-6)
                )
                yield self.engine.timeout(idle)
                session_end = self.engine.now + self.rng.exponential(
                    "owner.busy", self.config.owner_session_s
                )
                while self.engine.now < session_end:
                    yield from ctx.compute(5e7, MIX_SEVENZIP)
        except Interrupted:
            return
