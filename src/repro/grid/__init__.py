"""Desktop-grid layer: volunteer fleets with churn over a switched LAN —
the scale-out scenario the paper's single-machine measurements inform."""

from repro.grid.grid import DesktopGrid, GridReport, estimated_grid_efficiency
from repro.grid.volunteer import Volunteer, VolunteerConfig, VolunteerStats

__all__ = [
    "DesktopGrid",
    "GridReport",
    "Volunteer",
    "VolunteerConfig",
    "VolunteerStats",
    "estimated_grid_efficiency",
]
