"""Desktop-grid layer: volunteer fleets with churn over a switched LAN —
the scale-out scenario the paper's single-machine measurements inform.

``estimated_grid_efficiency`` moved to :mod:`repro.fleet`; the export
here is a :class:`DeprecationWarning` shim kept for one release."""

from repro.grid.grid import DesktopGrid, GridReport, estimated_grid_efficiency
from repro.grid.volunteer import Volunteer, VolunteerConfig, VolunteerStats

__all__ = [
    "DesktopGrid",
    "GridReport",
    "Volunteer",
    "VolunteerConfig",
    "VolunteerStats",
    "estimated_grid_efficiency",
]
