"""Desktop-grid assembly: a project server plus a fleet of volunteers.

The scale-out of the paper's single-machine study: many churning
volunteer desktops on a switched 100 Mbps LAN, all attached to one
Einstein@home-like project.  Used by the fleet example and the grid
tests to answer the question the paper motivates — how much science a
VM-based desktop grid actually delivers once churn, checkpoint loss and
VM overheads are accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ReproError
from repro.hardware.machine import Machine
from repro.hardware.specs import core2duo_e6600
from repro.hardware.switch import Switch
from repro.osmodel.kernel import Kernel, ubuntu_params
from repro.simcore.engine import Engine
from repro.simcore.rng import RngStreams
from repro.workloads.boinc import BoincServer
from repro.workloads.einstein import EinsteinWorkunit
from repro.grid.volunteer import Volunteer, VolunteerConfig


@dataclass
class GridReport:
    """What the fleet achieved over a run."""

    duration_s: float
    workunits_completed: int
    workunits_pending: int
    templates_done: int
    templates_lost: int
    crashes: int
    reassignments: int
    stale_results: int
    per_volunteer: dict = field(default_factory=dict)

    @property
    def loss_fraction(self) -> float:
        total = self.templates_done + self.templates_lost
        return self.templates_lost / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"grid run of {self.duration_s:.0f} simulated seconds",
            f"  workunits completed : {self.workunits_completed}"
            f" ({self.workunits_pending} still pending)",
            f"  templates computed  : {self.templates_done}"
            f" (+{self.templates_lost} lost to crashes,"
            f" {self.loss_fraction * 100:.1f}%)",
            f"  volunteer crashes   : {self.crashes}"
            f" ({self.reassignments} workunits reassigned,"
            f" {self.stale_results} stale results discarded)",
        ]
        for name, stats in sorted(self.per_volunteer.items()):
            lines.append(
                f"    {name:<14} wu={stats.workunits_done:<4}"
                f" crashes={stats.crashes:<3}"
                f" lost={stats.templates_lost}"
            )
        return "\n".join(lines)


class DesktopGrid:
    """One project server + N volunteers on a switched LAN."""

    def __init__(self, volunteer_configs: List[VolunteerConfig],
                 workunits: List[EinsteinWorkunit],
                 seed: int = 0,
                 reassign_timeout_s: Optional[float] = 1800.0):
        if not volunteer_configs:
            raise ReproError("a grid needs at least one volunteer")
        names = [c.name for c in volunteer_configs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate volunteer names: {names}")
        self.engine = Engine()
        self.rng = RngStreams(seed)
        self.switch = Switch(self.engine, "lab-lan")

        server_machine = Machine(self.engine, core2duo_e6600("project"),
                                 self.rng.fork("project-hw"))
        self.switch.attach(server_machine.nic)
        self.server_kernel = Kernel(self.engine, server_machine,
                                    ubuntu_params(), name="project")
        self.server = BoincServer(self.server_kernel,
                                  reassign_timeout_s=reassign_timeout_s)
        self.server.add_workunits(workunits)

        self.volunteers: List[Volunteer] = []
        for config in volunteer_configs:
            volunteer = Volunteer(self.engine, self.server, config, self.rng)
            self.switch.attach(volunteer.machine.nic)
            self.volunteers.append(volunteer)

    def run(self, duration_s: float) -> GridReport:
        """Run the whole grid for ``duration_s`` of simulated time."""
        for volunteer in self.volunteers:
            volunteer.start()
        self.engine.run(until=duration_s)
        for volunteer in self.volunteers:
            volunteer.stop()
        return self.report(duration_s)

    def report(self, duration_s: float) -> GridReport:
        return GridReport(
            duration_s=duration_s,
            workunits_completed=self.server.results_received,
            workunits_pending=len(self.server.pending)
            + len(self.server.in_flight),
            templates_done=sum(v.stats.templates_done
                               for v in self.volunteers),
            templates_lost=sum(v.stats.templates_lost
                               for v in self.volunteers),
            crashes=sum(v.stats.crashes for v in self.volunteers),
            reassignments=sum(r.reassignments
                              for r in list(self.server.completed)
                              + list(self.server.pending)
                              + list(self.server.in_flight.values())),
            stale_results=self.server.stale_results,
            per_volunteer={v.config.name: v.stats for v in self.volunteers},
        )


def estimated_grid_efficiency(hypervisor: str) -> float:
    """Deprecated shim: this moved to
    :func:`repro.fleet.calibration.estimated_grid_efficiency` alongside
    the rest of the figures-to-fleet reduction (same semantics; the
    fleet version also accepts aliases such as ``"vmware"``)."""
    import warnings

    from repro.fleet.calibration import (
        estimated_grid_efficiency as _fleet_efficiency,
    )

    warnings.warn(
        "repro.grid.estimated_grid_efficiency moved to repro.fleet; "
        "import it from repro.fleet (or repro.fleet.calibration) instead",
        DeprecationWarning, stacklevel=2,
    )
    return _fleet_efficiency(hypervisor)
