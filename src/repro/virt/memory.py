"""Host memory model for N concurrent VMs: working sets, ballooning,
overcommit and reclaim (`repro.virt.memory`).

The paper's §4.2.1 treats guest memory as one configured, constant
commitment — a model that cannot ask what happens when several VMs share
a volunteer machine.  This module adds the dynamic regime:

* :class:`WorkingSetModel` — a phase-driven, seeded process for how much
  of its RAM each guest actually touches;
* :class:`BalloonDriver` — inflate/deflate between host and guest at a
  bounded rate, with a per-page CPU cost;
* :class:`GuestMemory` — per-VM state tying the two together: a squeezed
  guest (working set beyond its unballooned RAM) pays page-fault service
  cycles on its own ``memd`` thread at the VM's priority;
* :class:`MemoryPressureController` — arbitrates balloon targets across
  guests so total commitment tracks host capacity;
* :class:`MultiVmHost` — composes N VMs on one machine under one
  controller, with a ``kswapd`` reclaim thread that burns host CPU
  whenever commitment still spills past physical RAM.

Feedback paths into compute speed
---------------------------------
1. **Global paging penalty** — balloon moves go through
   :meth:`repro.hardware.memory.MemoryAccounting.adjust`, and the
   scheduler multiplies every core's speed by
   ``memory.paging_penalty_factor()``; overcommit slows host and guests
   alike.
2. **Guest-side fault service** — squeezed working sets charge fault
   cycles on the per-VM ``memd`` thread, competing with the vCPU at the
   same priority.
3. **Host-side reclaim** — residual overshoot charges reclaim cycles on
   the host ``kswapd`` thread at high priority, stealing time from host
   benchmarks (the intrusiveness the multi-VM figures measure).

Determinism contract
--------------------
All stochastic state (phase plans) draws from named
:class:`repro.simcore.rng.RngStreams` substreams; balloon and reclaim
arithmetic is integer and page-aligned; the controller iterates guests
in sorted-name order.  The ``mem.pressure_spike`` fault site draws from
the fault plan's own hash stream, so an armed storm never perturbs the
experiment streams.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Union

from repro.errors import VirtualizationError
from repro.faults import FAULTS
from repro.hardware.cpu import MIX_VMM_SERVICE
from repro.obs.metrics import METRICS
from repro.osmodel.kernel import Kernel
from repro.osmodel.threads import PRIORITY_HIGH, PRIORITY_IDLE
from repro.simcore.process import Interrupted
from repro.simcore.rng import RngStreams
from repro.units import MB
from repro.virt.profiles import HypervisorProfile, get_profile
from repro.virt.vm import VirtualMachine, VmConfig, VmState


@dataclass(frozen=True)
class MemoryModelParams:
    """Tunables of the host memory model (one frozen value object)."""

    tick_interval_s: float = 0.25        #: guest/host memory tick cadence
    min_guest_bytes: int = 64 * MB       #: balloon floor: guest keeps this
    balloon_rate_bytes_per_s: float = 128.0 * MB  #: max balloon movement
    balloon_page_cycles: float = 900.0   #: CPU cost per ballooned page
    fault_page_cycles: float = 3000.0    #: guest cost per re-faulted page
    reclaim_page_cycles: float = 2200.0  #: host kswapd cost per page
    fault_touch_frac_per_s: float = 0.5  #: squeezed bytes re-faulted per s
    reclaim_frac_per_s: float = 0.5      #: overshoot scanned per second
    headroom_frac: float = 0.04          #: host RAM kept free of guests
    ws_floor_frac: float = 0.15          #: phase target floor (of guest RAM)
    ws_ceil_frac: float = 0.95           #: phase target ceiling
    ws_ramp_frac_per_s: float = 0.35     #: working-set gap closed per second
    phase_min_s: float = 4.0             #: shortest working-set phase
    phase_max_s: float = 30.0            #: longest working-set phase
    spike_bytes: int = 96 * MB           #: mem.pressure_spike demand bump
    spike_decay_halflife_s: float = 2.0  #: spike demand halves this often

    def __post_init__(self):
        if self.tick_interval_s <= 0:
            raise VirtualizationError(
                f"tick_interval_s must be positive, got {self.tick_interval_s}")
        if self.min_guest_bytes <= 0:
            raise VirtualizationError("min_guest_bytes must be positive")
        if not 0.0 <= self.headroom_frac < 1.0:
            raise VirtualizationError(
                f"headroom_frac must lie in [0, 1), got {self.headroom_frac}")
        if not 0.0 < self.ws_floor_frac <= self.ws_ceil_frac <= 1.0:
            raise VirtualizationError(
                "working-set fractions must satisfy "
                f"0 < floor <= ceil <= 1, got {self.ws_floor_frac}"
                f"/{self.ws_ceil_frac}")
        if self.phase_min_s <= 0 or self.phase_max_s < self.phase_min_s:
            raise VirtualizationError("phase durations must be positive "
                                      "with min <= max")


class WorkingSetModel:
    """Phase-driven guest memory demand, a pure function of its stream.

    The guest alternates through phases (each with a seeded duration and
    a seeded target fraction of its configured RAM) and ramps its
    working set toward the current target.  The working set is always
    >= 0 by construction — reclaim and ballooning squeeze how much of it
    is *resident*, never the demand itself.
    """

    def __init__(self, rng: RngStreams, configured_bytes: int,
                 params: MemoryModelParams):
        self.rng = rng
        self.configured_bytes = configured_bytes
        self.params = params
        self.working_set_bytes = int(configured_bytes * params.ws_floor_frac)
        self._phase_index = 0
        self._phase_left_s = 0.0
        self._target_bytes = self.working_set_bytes
        self._next_phase()

    def _next_phase(self) -> None:
        index = self._phase_index
        self._phase_index += 1
        params = self.params
        self._phase_left_s = self.rng.uniform(
            f"phase-{index}-dur", params.phase_min_s, params.phase_max_s)
        frac = self.rng.uniform(
            f"phase-{index}-frac", params.ws_floor_frac, params.ws_ceil_frac)
        self._target_bytes = int(self.configured_bytes * frac)

    @property
    def target_bytes(self) -> int:
        return self._target_bytes

    def advance(self, dt: float) -> int:
        """Advance phase time by ``dt`` seconds; returns the working set."""
        if dt < 0:
            raise VirtualizationError(f"dt must be >= 0, got {dt}")
        self._phase_left_s -= dt
        while self._phase_left_s <= 0.0:
            self._next_phase()
        gap = self._target_bytes - self.working_set_bytes
        step = gap * min(1.0, self.params.ws_ramp_frac_per_s * dt)
        self.working_set_bytes = max(0, self.working_set_bytes + int(step))
        return self.working_set_bytes


class BalloonDriver:
    """Inflate/deflate state machine for one guest.

    ``inflated_bytes`` is memory taken *from* the guest (host commitment
    released); movement toward ``target_bytes`` is bounded by the
    balloon rate and always an exact multiple of the page size, so a
    full inflate→deflate cycle returns the commitment to its prior value
    byte-for-byte.
    """

    def __init__(self, params: MemoryModelParams, page_bytes: int,
                 max_bytes: int):
        self.params = params
        self.page_bytes = page_bytes
        self.max_bytes = (max_bytes // page_bytes) * page_bytes
        self.inflated_bytes = 0
        self.target_bytes = 0
        self.total_inflated_bytes = 0
        self.total_deflated_bytes = 0

    def set_target(self, nbytes: int) -> None:
        """Clamp ``nbytes`` into [0, max] and page-align it."""
        nbytes = max(0, min(int(nbytes), self.max_bytes))
        self.target_bytes = (nbytes // self.page_bytes) * self.page_bytes

    @property
    def pending_bytes(self) -> int:
        """Signed movement still owed (positive = inflate ahead)."""
        return self.target_bytes - self.inflated_bytes

    def step(self, dt: float) -> tuple:
        """Move toward the target; returns ``(moved_bytes, cycles)``.

        ``moved_bytes`` is signed (positive = inflated, i.e. host
        commitment to release); ``cycles`` is the CPU cost of copying
        and remapping the pages, charged to the guest's memd thread.
        """
        budget = int(self.params.balloon_rate_bytes_per_s * dt)
        delta = self.target_bytes - self.inflated_bytes
        move = max(-budget, min(budget, delta))
        pages = abs(move) // self.page_bytes
        move = pages * self.page_bytes * (1 if move >= 0 else -1)
        if pages == 0:
            # below one page of budget: finish the residue exactly so
            # targets are always reachable (they are page-aligned)
            if 0 < abs(delta) <= self.page_bytes:
                move = delta
                pages = 1
            else:
                return 0, 0.0
        self.inflated_bytes += move
        if move > 0:
            self.total_inflated_bytes += move
        else:
            self.total_deflated_bytes += -move
        return move, pages * self.params.balloon_page_cycles


class GuestMemory:
    """Dynamic per-VM memory state: working set, balloon, commitment.

    Attach with :meth:`start` after ``vm.boot()``: it spawns a ``memd``
    thread at the VM's priority and a ticker process, both registered on
    the VM so ``vm.shutdown()`` tears them down.  Everything the host
    controller needs (demand, slack, squeeze) is exposed as properties.
    """

    def __init__(self, vm: VirtualMachine, rng: RngStreams,
                 params: Optional[MemoryModelParams] = None):
        if vm.state is not VmState.RUNNING:
            raise VirtualizationError(
                f"{vm.name}: GuestMemory requires a RUNNING vm, "
                f"is {vm.state}")
        self.vm = vm
        self.params = params or MemoryModelParams()
        self.page_bytes = vm.host_machine.spec.memory.page_bytes
        self.working_set = WorkingSetModel(
            rng, vm.config.memory_bytes, self.params)
        max_balloon = max(
            0, vm.config.memory_bytes - self.params.min_guest_bytes)
        self.balloon = BalloonDriver(self.params, self.page_bytes,
                                     max_balloon)
        self.squeezed_bytes = 0
        self.spike_bytes = 0.0
        self.fault_pages = 0
        self.ticks = 0
        self.thread = None
        vm.guest_memory = self

    # -- derived state ----------------------------------------------------

    @property
    def configured_bytes(self) -> int:
        return self.vm.config.memory_bytes

    @property
    def usable_bytes(self) -> int:
        """Guest RAM not currently claimed by the balloon."""
        return self.configured_bytes - self.balloon.inflated_bytes

    @property
    def demand_bytes(self) -> int:
        """Bytes the guest wants resident right now (capped at its RAM)."""
        return min(self.configured_bytes,
                   self.working_set.working_set_bytes + int(self.spike_bytes))

    @property
    def free_guest_bytes(self) -> int:
        """Unballooned guest RAM beyond the current demand (inflatable
        without squeezing the guest)."""
        return max(0, self.usable_bytes - self.demand_bytes)

    @property
    def balloon_headroom_bytes(self) -> int:
        """How much further the balloon target could grow."""
        return self.balloon.max_bytes - self.balloon.target_bytes

    def inject_spike(self, nbytes: int) -> None:
        """Transient extra demand (the ``mem.pressure_spike`` fault)."""
        self.spike_bytes += nbytes

    # -- per-tick model ----------------------------------------------------

    def tick(self, dt: float) -> float:
        """Advance the model by ``dt`` seconds; returns guest CPU cycles
        (balloon copying + page-fault service) to charge on ``memd``."""
        params = self.params
        self.ticks += 1
        self.working_set.advance(dt)
        if self.spike_bytes > 0.0:
            self.spike_bytes *= 0.5 ** (dt / params.spike_decay_halflife_s)
            if self.spike_bytes < self.page_bytes:
                self.spike_bytes = 0.0
        moved, cycles = self.balloon.step(dt)
        if moved:
            # inflate releases host commitment, deflate re-commits
            self.vm.host_kernel.machine.memory.adjust(self.vm.name, -moved)
        self.squeezed_bytes = max(0, self.demand_bytes - self.usable_bytes)
        fault_bytes = self.squeezed_bytes * min(
            1.0, params.fault_touch_frac_per_s * dt)
        fault_pages = int(fault_bytes) // self.page_bytes
        self.fault_pages += fault_pages
        cycles += fault_pages * params.fault_page_cycles
        if METRICS.enabled:
            METRICS.inc("mem.ticks")
            if moved > 0:
                METRICS.inc("mem.balloon.inflated_bytes", moved)
            elif moved < 0:
                METRICS.inc("mem.balloon.deflated_bytes", -moved)
            if fault_pages:
                METRICS.inc("mem.fault.pages", fault_pages)
            METRICS.gauge_max("mem.squeezed_peak_bytes", self.squeezed_bytes)
        return cycles

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the memd thread + ticker process on the VM's kernel."""
        scheduler = self.vm.host_kernel.scheduler
        self.thread = scheduler.spawn(
            f"{self.vm.name}.memd", self.vm.config.priority,
            group=self.vm.name)
        proc = self.vm.engine.process(
            self._ticker(), name=f"{self.vm.name}.memd")
        self.vm.register_service(thread=self.thread, proc=proc)

    def _ticker(self) -> Generator:
        """Periodic memory work, phase-staggered like the service loops."""
        vm = self.vm
        engine = vm.engine
        scheduler = vm.host_kernel.scheduler
        interval = self.params.tick_interval_s
        digest = zlib.crc32(f"{vm.name}/memd".encode())
        next_t = engine.now + (digest % 997) / 997.0 * interval
        last = engine.now
        try:
            while vm.state is not VmState.STOPPED:
                next_t += interval
                delay = next_t - engine.now
                if delay > 0:
                    yield engine.timeout(delay)
                if vm.state is VmState.STOPPED:
                    return
                if vm.state is VmState.SUSPENDED:
                    last = engine.now
                    continue
                dt = engine.now - last
                last = engine.now
                cycles = self.tick(dt) if dt > 0 else 0.0
                if cycles > 0:
                    yield scheduler.submit(self.thread, cycles,
                                           MIX_VMM_SERVICE)
        except Interrupted:
            return


class MemoryPressureController:
    """Arbitrates balloon targets so commitment tracks host capacity.

    Decisions use the *projected* commitment (current minus balloon
    movement already in flight), so targets converge instead of
    oscillating.  Guests are visited in sorted-name order; inflate takes
    free guest memory first and squeezes only when it must, deflate
    returns memory to squeezed guests first.
    """

    def __init__(self, memory, params: MemoryModelParams):
        self.memory = memory
        self.params = params

    def _limit_bytes(self) -> int:
        capacity = self.memory.spec.capacity_bytes
        return int(capacity * (1.0 - self.params.headroom_frac))

    def rebalance(self, guests: Sequence[GuestMemory]) -> int:
        """One arbitration pass; returns the signed residual need."""
        ordered = sorted(guests, key=lambda g: g.vm.name)
        pending = sum(g.balloon.pending_bytes for g in ordered)
        projected = self.memory.committed_bytes - pending
        need = projected - self._limit_bytes()
        if need > 0:
            self._inflate(ordered, need)
        elif need < 0:
            self._deflate(ordered, -need)
        return need

    def _inflate(self, ordered: Sequence[GuestMemory], need: int) -> None:
        for phase in ("slack", "forced"):
            if need <= 0:
                return
            for guest in ordered:
                if need <= 0:
                    return
                room = guest.balloon_headroom_bytes
                if phase == "slack":
                    room = min(room, guest.free_guest_bytes)
                take = min(room, need)
                take = (take // guest.page_bytes) * guest.page_bytes
                if take <= 0:
                    continue
                guest.balloon.set_target(guest.balloon.target_bytes + take)
                need -= take

    def _deflate(self, ordered: Sequence[GuestMemory], surplus: int) -> None:
        for phase in ("squeezed", "any"):
            if surplus <= 0:
                return
            for guest in ordered:
                if surplus <= 0:
                    return
                want = guest.balloon.target_bytes
                if phase == "squeezed":
                    want = min(want,
                               guest.squeezed_bytes + guest.page_bytes)
                give = min(want, surplus)
                give = (give // guest.page_bytes) * guest.page_bytes
                if give <= 0:
                    continue
                guest.balloon.set_target(guest.balloon.target_bytes - give)
                surplus -= give


def plan_vm_memory(spec, n_vms: int, overcommit_ratio: float,
                   profile: HypervisorProfile,
                   params: Optional[MemoryModelParams] = None) -> int:
    """Per-VM configured guest RAM for an N-VM host.

    Total *configured* guest memory is ``overcommit_ratio`` times
    physical RAM (the knob's meaning), minus the per-VM VMM overheads,
    split evenly and page-aligned.  Raises when the plan cannot fit in
    RAM+swap or leaves a guest below the balloon floor.
    """
    params = params or MemoryModelParams()
    if n_vms < 1:
        raise VirtualizationError(f"n_vms must be >= 1, got {n_vms}")
    if overcommit_ratio <= 0:
        raise VirtualizationError(
            f"overcommit_ratio must be positive, got {overcommit_ratio}")
    total_guest = (int(spec.capacity_bytes * overcommit_ratio)
                   - n_vms * profile.vmm_overhead_bytes)
    per_vm = (total_guest // n_vms // spec.page_bytes) * spec.page_bytes
    if per_vm < params.min_guest_bytes:
        raise VirtualizationError(
            f"memory plan leaves {per_vm} bytes per guest for {n_vms} "
            f"VM(s) at ratio {overcommit_ratio:g}; the balloon floor is "
            f"{params.min_guest_bytes}")
    committed = n_vms * (per_vm + profile.vmm_overhead_bytes)
    if committed > spec.capacity_bytes + spec.swap_bytes:
        raise VirtualizationError(
            f"memory plan commits {committed} bytes for {n_vms} VM(s) at "
            f"ratio {overcommit_ratio:g}, beyond RAM+swap "
            f"({spec.capacity_bytes + spec.swap_bytes})")
    return per_vm


class MultiVmHost:
    """N concurrent VMs on one host kernel under one memory arbiter.

    ::

        host = MultiVmHost(kernel, rng.fork("multivm"), n_vms=4,
                           overcommit_ratio=1.5)
        yield from host.boot()        # inside a sim process
        ... run guest workloads against host.vms ...
        host.shutdown()

    The host runs a ``kswapd`` thread at high priority: whenever
    commitment still spills past physical RAM after ballooning, reclaim
    cycles are charged there — host CPU the multi-VM intrusiveness
    figures measure.  The ``mem.pressure_spike`` fault site (when armed)
    bumps every guest's demand transiently, composing balloon storms
    with the chaos drill.
    """

    def __init__(self, host_kernel: Kernel, rng: RngStreams, n_vms: int,
                 overcommit_ratio: float = 1.0,
                 profile: Union[str, HypervisorProfile] = "virtualbox",
                 params: Optional[MemoryModelParams] = None,
                 vm_priority: int = PRIORITY_IDLE,
                 fault_key: str = ""):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.host_kernel = host_kernel
        self.engine = host_kernel.engine
        self.rng = rng
        self.n_vms = n_vms
        self.overcommit_ratio = float(overcommit_ratio)
        self.profile = profile
        self.params = params or MemoryModelParams()
        self.fault_key = fault_key
        spec = host_kernel.machine.spec.memory
        self.per_vm_bytes = plan_vm_memory(
            spec, n_vms, self.overcommit_ratio, profile, self.params)
        self.vm_priority = vm_priority
        self.vms: List[VirtualMachine] = []
        self.guests: List[GuestMemory] = []
        self.controller = MemoryPressureController(
            host_kernel.machine.memory, self.params)
        self.kswapd = None
        self._host_proc = None
        self._host_ticks = 0
        self.reclaim_pages = 0
        self.spikes_injected = 0
        self.peak_committed_bytes = 0
        self.peak_squeezed_bytes = 0

    def boot(self) -> Generator:
        """Boot every VM and start the memory machinery (a generator:
        run it inside a sim process)."""
        for index in range(self.n_vms):
            vm = VirtualMachine(
                self.host_kernel, self.profile,
                VmConfig(name=f"vm{index}",
                         memory_bytes=self.per_vm_bytes,
                         priority=self.vm_priority))
            yield from vm.boot()
            guest = GuestMemory(vm, self.rng.fork(f"mem/vm{index}"),
                                self.params)
            guest.start()
            self.vms.append(vm)
            self.guests.append(guest)
        scheduler = self.host_kernel.scheduler
        self.kswapd = scheduler.spawn("host.kswapd", PRIORITY_HIGH,
                                      group="host.mm")
        self._host_proc = self.engine.process(self._host_loop(),
                                              name="host.mm")

    def shutdown(self) -> None:
        """Stop the controller, exit kswapd, shut every VM down."""
        if self._host_proc is not None:
            self._host_proc.interrupt("multivm shutdown")
            self._host_proc = None
        if self.kswapd is not None:
            self.host_kernel.scheduler.exit_thread(self.kswapd)
            self.kswapd = None
        for vm in self.vms:
            vm.shutdown()

    # -- aggregate observations -------------------------------------------

    @property
    def committed_bytes(self) -> int:
        memory = self.host_kernel.machine.memory
        return sum(memory.held(vm.name) for vm in self.vms)

    @property
    def guest_instructions(self) -> float:
        return sum(vm.vcpu.guest_instructions for vm in self.vms)

    @property
    def balloon_moved_bytes(self) -> int:
        return sum(g.balloon.total_inflated_bytes
                   + g.balloon.total_deflated_bytes for g in self.guests)

    def observations(self) -> Dict[str, float]:
        """Scalar summary for figures/benchmarks (METRICS-independent)."""
        return {
            "committed_peak_mb": self.peak_committed_bytes / MB,
            "squeezed_peak_mb": self.peak_squeezed_bytes / MB,
            "reclaim_pages": float(self.reclaim_pages),
            "balloon_moved_mb": self.balloon_moved_bytes / MB,
            "spikes_injected": float(self.spikes_injected),
        }

    # -- host-side loop ----------------------------------------------------

    def _host_loop(self) -> Generator:
        """Controller + reclaim tick, phase-staggered from the guests."""
        engine = self.engine
        scheduler = self.host_kernel.scheduler
        memory = self.host_kernel.machine.memory
        params = self.params
        interval = params.tick_interval_s
        digest = zlib.crc32(b"host.mm/kswapd")
        next_t = engine.now + (digest % 997) / 997.0 * interval
        last = engine.now
        page_bytes = self.host_kernel.machine.spec.memory.page_bytes
        try:
            while True:
                next_t += interval
                delay = next_t - engine.now
                if delay > 0:
                    yield engine.timeout(delay)
                dt = engine.now - last
                last = engine.now
                self._host_ticks += 1
                if FAULTS.enabled and FAULTS.fires(
                        "mem.pressure_spike",
                        key=f"{self.fault_key}#{self._host_ticks}"):
                    for guest in self.guests:
                        guest.inject_spike(params.spike_bytes)
                    self.spikes_injected += 1
                self.controller.rebalance(self.guests)
                committed = memory.committed_bytes
                self.peak_committed_bytes = max(self.peak_committed_bytes,
                                                committed)
                self.peak_squeezed_bytes = max(
                    self.peak_squeezed_bytes,
                    sum(g.squeezed_bytes for g in self.guests))
                overshoot = memory.swap_used_bytes
                cycles = 0.0
                if overshoot > 0 and dt > 0:
                    scan_bytes = overshoot * min(
                        1.0, params.reclaim_frac_per_s * dt)
                    pages = int(scan_bytes) // page_bytes
                    if pages:
                        self.reclaim_pages += pages
                        cycles = pages * params.reclaim_page_cycles
                if METRICS.enabled:
                    METRICS.inc("mem.host_ticks")
                    METRICS.gauge_max("mem.committed_peak_bytes", committed)
                    METRICS.gauge_max("mem.pressure_peak",
                                      memory.pressure())
                    if cycles:
                        METRICS.inc("mem.reclaim.pages", pages)
                if cycles > 0:
                    yield scheduler.submit(self.kswapd, cycles,
                                           MIX_VMM_SERVICE)
        except Interrupted:
            return
