"""External UDP time reference (the paper's measurement workaround).

"to circumvent the timing imprecision that occur on virtual machines ...
time measurements for executions under virtual machines were done
resorting to an external time reference.  For that purpose, we used a
simple UDP time server running on the host machine." — §4.

:class:`UdpTimeServer` runs on the host kernel; :class:`GuestTimeClient`
gives a guest context a ``timestamp_source`` that performs the round trip
(so accurate guest-side timestamps cost a real RTT through the virtual
NIC, as they did in the paper's setup).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.osmodel.kernel import Kernel
from repro.osmodel.netstack import NetStack
from repro.osmodel.threads import PRIORITY_ABOVE_NORMAL, SimThread

TIME_PORT = 371  # arbitrary unprivileged-ish port used throughout


class UdpTimeServer:
    """Answers every datagram with the host's current clock reading."""

    def __init__(self, kernel: Kernel, port: int = TIME_PORT):
        self.kernel = kernel
        self.port = port
        self.queries_served = 0
        self._running = True
        self.thread = kernel.spawn_thread(
            f"timeserver:{port}", PRIORITY_ABOVE_NORMAL
        )
        self.sock = kernel.net.udp_socket(port)
        self._proc = kernel.engine.process(self._serve(), name=f"timeserver:{port}")

    def _serve(self):
        while self._running:
            request, source = yield from self.sock.recvfrom(self.thread)
            reply_port = request["reply_port"]
            # reply with the server's high-resolution counter (the paper's
            # time server exists precisely because coarse/lying clocks are
            # useless for benchmarking)
            yield from self.sock.sendto(
                self.thread, source, reply_port,
                {"time": self.kernel.engine.now}, nbytes=64,
            )
            self.queries_served += 1

    def stop(self) -> None:
        self._running = False
        self._proc.interrupt("server stopped")


class GuestTimeClient:
    """Guest-side query helper; usable as a context ``timestamp_source``."""

    def __init__(self, net: NetStack, thread: SimThread,
                 server: UdpTimeServer, reply_port: int = 40371):
        self.net = net
        self.thread = thread
        self.server = server
        self.reply_port = reply_port
        self.sock = net.udp_socket(reply_port)
        self.queries = 0

    def query(self) -> Generator:
        """One UDP round trip; returns the server's clock reading."""
        yield from self.sock.sendto(
            self.thread, self.server.kernel.net, self.server.port,
            {"reply_port": self.reply_port}, nbytes=64,
        )
        reply, _source = yield from self.sock.recvfrom(self.thread)
        self.queries += 1
        return reply["time"]
