"""Virtual CPU: translates guest cycle demand into host cycle demand.

Full virtualisation on 2006-era x86 (no VT-x in use by these products)
runs guest user-mode code through binary translation at a small per-class
penalty and guest kernel-mode code through heavyweight rewriting.  The
:class:`VCpu` applies the profile's multipliers per
:class:`~repro.osmodel.kernel.CostKind` and submits the resulting *host*
cycles on the VM's vCPU host thread.

It also keeps guest-side retirement accounting (guest instructions and
cycles), which is what guest benchmarks report (a guest MIPS is a guest
instruction, however many host cycles it cost to emulate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import VirtualizationError
from repro.hardware.cpu import InstructionMix
from repro.obs.metrics import METRICS
from repro.osmodel.kernel import CostKind
from repro.osmodel.threads import SimThread
from repro.simcore.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.profiles import HypervisorProfile


def user_multiplier(profile: "HypervisorProfile", mix: InstructionMix) -> float:
    """Class-weighted translation multiplier for user-mode code of ``mix``."""
    return (
        mix.int_frac * profile.m_int
        + mix.fp_frac * profile.m_fp
        + mix.mem_frac * profile.m_mem
    )


def translate_cycles(profile: "HypervisorProfile", cycles: float,
                     mix: InstructionMix, kind: CostKind) -> float:
    """Host cycles needed to emulate ``cycles`` of guest work."""
    if cycles < 0:
        raise VirtualizationError(f"negative guest cycles: {cycles}")
    if kind is CostKind.USER:
        user = user_multiplier(profile, mix)
        kf = mix.kernel_frac
        return cycles * ((1.0 - kf) * user + kf * profile.m_kernel)
    if kind is CostKind.KERNEL_CONTROL:
        return cycles * profile.m_kernel
    if kind is CostKind.KERNEL_COPY:
        return cycles * profile.m_copy
    raise VirtualizationError(f"unknown cost kind: {kind!r}")


class VCpu:
    """One virtual CPU bound to a host thread.

    Implements the :data:`~repro.osmodel.kernel.ChargeFn` signature so a
    guest :class:`~repro.osmodel.kernel.ExecutionContext`, guest
    filesystem and guest netstack can charge through it transparently.
    """

    def __init__(self, vm, thread: SimThread):
        self.vm = vm
        self.thread = thread
        self.guest_cycles = 0.0
        self.guest_instructions = 0.0
        self.host_cycles_charged = 0.0

    def charge(self, thread: SimThread, cycles: float, mix: InstructionMix,
               kind: CostKind) -> SimEvent:
        """Guest charge: scale by translation cost, run on the vCPU thread.

        ``thread`` is ignored — the guest is single-vCPU, so *all* guest
        execution funnels onto this vCPU's host thread regardless of
        which context object issued the charge.
        """
        del thread
        host_cycles = translate_cycles(self.vm.profile, cycles, mix, kind)
        self.guest_cycles += cycles
        self.guest_instructions += cycles / mix.cpi
        self.host_cycles_charged += host_cycles
        if METRICS.enabled:
            METRICS.inc("virt.vcpu.guest_cycles", cycles)
            METRICS.inc("virt.vcpu.host_cycles", host_cycles)
            # Translation overhead = host cycles beyond the guest demand —
            # the "stolen" capacity a guest benchmark never sees.
            METRICS.inc("virt.vcpu.steal_cycles", host_cycles - cycles)
        return self.vm.host_kernel.scheduler.submit(self.thread, host_cycles, mix)

    def charge_host_native(self, cycles: float, mix: InstructionMix) -> SimEvent:
        """VMM's own (host-native) work on the vCPU thread — device
        emulation, image-file syscalls.  No translation multiplier."""
        self.host_cycles_charged += cycles
        if METRICS.enabled:
            METRICS.inc("virt.vcpu.host_native_cycles", cycles)
        return self.vm.host_kernel.scheduler.submit(self.thread, cycles, mix)
