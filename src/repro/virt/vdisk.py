"""Virtual disk: guest block requests traverse the VMM into a host image.

Path of one guest block request (the double traversal the paper blames
for Figure 3's severity):

1. VM exit + device emulation on the VMM/vCPU host thread
   (``disk_per_request_cycles + disk_per_kb_cycles * KB``),
2. the corresponding read/write on the *host* filesystem against the
   VM's image file (host kernel CPU + host page cache + physical disk),
3. guest ``fsync`` additionally forces a host ``fsync`` of the image
   (write-through flush semantics — these VMMs do not lie about
   durability to the guest).

``VirtualDisk`` implements the same ``submit``/``flush`` interface as
:class:`repro.hardware.disk.Disk`, so a guest
:class:`~repro.osmodel.filesystem.FileSystem` mounts it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import VirtualizationError
from repro.hardware.cpu import MIX_VMM_SERVICE
from repro.simcore.events import SimEvent
from repro.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.vm import VirtualMachine


@dataclass
class VDiskStats:
    requests: int = 0
    bytes_moved: int = 0
    emulation_cycles: float = 0.0


class VirtualDisk:
    """Disk-like device backed by an image file on the host filesystem."""

    def __init__(self, vm: "VirtualMachine", image_path: str,
                 capacity_bytes: int):
        self.vm = vm
        self.image_path = image_path
        self.capacity_bytes = capacity_bytes
        self.stats = VDiskStats()
        # Mimic the hardware Disk surface closely enough for FileSystem
        # diagnostics (``.spec.capacity_bytes``).
        self.spec = _VDiskSpec(capacity_bytes)

    def submit(self, nbytes: int, offset: int, is_write: bool) -> SimEvent:
        """Queue one guest block request; event succeeds at completion."""
        if nbytes <= 0:
            raise VirtualizationError(f"vdisk request of {nbytes} bytes")
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise VirtualizationError(
                f"vdisk request [{offset}, {offset + nbytes}) out of range"
            )
        done = self.vm.engine.event()
        self.vm.engine.process(
            self._service(nbytes, offset, is_write, done),
            name=f"{self.vm.name}.vdisk",
        )
        return done

    def _service(self, nbytes: int, offset: int, is_write: bool,
                 done: SimEvent):
        try:
            yield from self._service_inner(nbytes, offset, is_write)
        except Exception as error:  # propagate to the guest-side waiter
            done.fail(error)
            return
        done.succeed(None)

    def _service_inner(self, nbytes: int, offset: int, is_write: bool):
        profile = self.vm.profile
        emulation = (
            profile.disk_per_request_cycles
            + profile.disk_per_kb_cycles * (nbytes / KB)
        )
        self.stats.requests += 1
        self.stats.bytes_moved += nbytes
        self.stats.emulation_cycles += emulation
        # 1. exit + emulation on the vCPU host thread
        yield self.vm.vcpu.charge_host_native(emulation, MIX_VMM_SERVICE)
        # 2. host-side image I/O (host kernel costs + host cache + disk)
        host_fs = self.vm.host_kernel.fs
        thread = self.vm.vcpu.thread
        if is_write:
            yield from host_fs.write(thread, self.image_path, offset, nbytes)
        else:
            yield from host_fs.read(thread, self.image_path, offset, nbytes)

    def flush(self) -> SimEvent:
        """Guest flush: force the host image to stable storage."""
        done = self.vm.engine.event()
        self.vm.engine.process(self._flush(done), name=f"{self.vm.name}.vflush")
        return done

    def _flush(self, done: SimEvent):
        try:
            yield from self.vm.host_kernel.fs.fsync(
                self.vm.vcpu.thread, self.image_path
            )
        except Exception as error:
            done.fail(error)
            return
        done.succeed(None)


class _VDiskSpec:
    __slots__ = ("capacity_bytes",)

    def __init__(self, capacity_bytes: int):
        self.capacity_bytes = capacity_bytes
