"""System-level virtualisation models: hypervisor profiles, vCPU
translation, virtual devices, guest clocks, checkpointing, time server."""

from repro.virt.checkpoint import (
    CheckpointImage,
    restore_checkpoint,
    save_checkpoint,
    transfer_checkpoint,
)
from repro.virt.guestclock import ClockStats, GuestClock
from repro.virt.memory import (
    BalloonDriver,
    GuestMemory,
    MemoryModelParams,
    MemoryPressureController,
    MultiVmHost,
    WorkingSetModel,
    plan_vm_memory,
)
from repro.virt.profiles import (
    ALL_PROFILES,
    PROFILE_ORDER,
    QEMU,
    VIRTUALBOX,
    VIRTUALPC,
    VMPLAYER,
    HypervisorProfile,
    NetMode,
    ServiceLoadSpec,
    get_profile,
)
from repro.virt.timeserver import TIME_PORT, GuestTimeClient, UdpTimeServer
from repro.virt.vcpu import VCpu, translate_cycles, user_multiplier
from repro.virt.vdisk import VirtualDisk
from repro.virt.vm import (
    GuestExecutionContext,
    VirtualMachine,
    VmConfig,
    VmState,
)
from repro.virt.vnic import VirtualNic

__all__ = [
    "ALL_PROFILES",
    "CheckpointImage",
    "ClockStats",
    "GuestClock",
    "BalloonDriver",
    "GuestExecutionContext",
    "GuestMemory",
    "GuestTimeClient",
    "HypervisorProfile",
    "MemoryModelParams",
    "MemoryPressureController",
    "MultiVmHost",
    "WorkingSetModel",
    "NetMode",
    "PROFILE_ORDER",
    "QEMU",
    "ServiceLoadSpec",
    "TIME_PORT",
    "UdpTimeServer",
    "VCpu",
    "VIRTUALBOX",
    "VIRTUALPC",
    "VMPLAYER",
    "VirtualDisk",
    "VirtualMachine",
    "VirtualNic",
    "VmConfig",
    "VmState",
    "get_profile",
    "plan_vm_memory",
    "restore_checkpoint",
    "save_checkpoint",
    "transfer_checkpoint",
]
