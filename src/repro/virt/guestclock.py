"""Guest timekeeping: tick delivery, backlog, loss and catch-up.

Guest OSes of this era count periodic timer interrupts (the "tick") to
advance their clock.  A descheduled vCPU cannot take interrupts, so ticks
pile up; what the VMM does with the backlog defines its policy:

* **catch-up** (VMware, per its timekeeping whitepaper — the paper's
  reference [22]): replay backlogged ticks at high rate so the guest
  clock stays correct.  Each replayed tick costs host CPU at elevated
  priority — under host load this becomes the dominant service cost and
  the mechanism behind VMware's Figure 7/8 penalty.
* **drop** (QEMU / VirtualBox / VirtualPC here): keep at most a small
  backlog, discard the rest.  Cheap, but the guest clock falls behind —
  the reason the paper could not run NBench inside guests and timed
  guest benchmarks against an external UDP server.

The VM's service loop calls :meth:`on_service_interval` once per
interval with the wall time elapsed and the vCPU CPU time obtained in
that window; the method returns the catch-up cycles to burn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.profiles import HypervisorProfile


@dataclass
class ClockStats:
    ticks_delivered: float = 0.0
    ticks_caught_up: float = 0.0
    ticks_dropped: float = 0.0


class GuestClock:
    """The guest's view of time, advanced tick by tick."""

    # A running guest kernel replays slightly more than real-time tick
    # flow for free (jiffies catch-up in its interrupt handler), so small
    # scheduling hiccups never leave a residual backlog.
    RUN_SLACK = 1.08

    def __init__(self, profile: "HypervisorProfile", boot_wall: float):
        self.profile = profile
        self.tick_hz = profile.guest_tick_hz
        self.boot_wall = boot_wall
        self.pending_ticks = 0.0
        self.stats = ClockStats()

    # -- clock API (what guest code sees) ---------------------------------

    def now(self) -> float:
        """Guest wall-clock reading, quantised to the tick period."""
        return self.boot_wall + int(self.stats.ticks_delivered) / self.tick_hz

    def uptime(self) -> float:
        return self.stats.ticks_delivered / self.tick_hz

    def error_seconds(self, true_now: float) -> float:
        """How far the guest clock lags true time (>= 0 in this model)."""
        true_elapsed = true_now - self.boot_wall
        return true_elapsed - self.uptime() - 0.0  # pending are still late

    # -- VMM side ------------------------------------------------------------

    def on_service_interval(self, wall_dt: float, vcpu_cpu_dt: float) -> float:
        """Advance tick bookkeeping for one service interval.

        Returns the host cycles of catch-up work the VMM must burn (zero
        for drop-policy VMMs).
        """
        if wall_dt < 0 or vcpu_cpu_dt < 0:
            raise ValueError("negative interval in guest clock accounting")
        self.pending_ticks += wall_dt * self.tick_hz
        # Ticks deliverable "for free": only while the vCPU actually ran
        # (a descheduled vCPU takes no timer interrupts).
        capacity = vcpu_cpu_dt * self.tick_hz * self.RUN_SLACK
        delivered = min(self.pending_ticks, capacity)
        self.pending_ticks -= delivered
        self.stats.ticks_delivered += delivered

        catchup_cycles = 0.0
        if self.profile.tick_catchup:
            # Replay the backlog at up to the nominal tick rate, paying
            # per-tick emulation cost at service priority.
            rate_limit = wall_dt * self.tick_hz
            caught = min(self.pending_ticks, rate_limit)
            self.pending_ticks -= caught
            self.stats.ticks_delivered += caught
            self.stats.ticks_caught_up += caught
            catchup_cycles = caught * self.profile.catchup_cycles_per_tick
            if caught > 0.0 and METRICS.enabled:
                METRICS.inc("virt.clock.ticks_caught_up", caught)
                METRICS.inc("virt.clock.catchup_cycles", catchup_cycles)
        else:
            limit = self.profile.tick_backlog_limit_s * self.tick_hz
            if self.pending_ticks > limit:
                if METRICS.enabled:
                    METRICS.inc("virt.clock.ticks_dropped",
                                self.pending_ticks - limit)
                self.stats.ticks_dropped += self.pending_ticks - limit
                self.pending_ticks = limit
        return catchup_cycles
