"""The virtual machine: vCPU, virtual devices, guest OS state, services.

Lifecycle::

    vm = VirtualMachine(host_kernel, get_profile("vmplayer"), VmConfig(...))
    yield from vm.boot()          # commits memory, creates the disk image
    ctx = vm.guest_context()      # ExecutionContext for guest workloads
    ... run workload generators against ctx ...
    vm.shutdown()

Host-side footprint while running (the paper's intrusiveness axes):

* **memory** — the full configured guest RAM plus VMM overhead is
  committed on the host for the VM's lifetime (§4.2.1);
* **CPU** — the vCPU host thread at the configured priority (idle class
  for volunteer computing) plus the profile's *service threads* at
  elevated priority: timer/device emulation, and for catch-up VMMs the
  tick-replay work that grows exactly when the vCPU is starved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.errors import VirtualizationError
from repro.hardware.cpu import MIX_VMM_SERVICE
from repro.osmodel.filesystem import FileSystem
from repro.osmodel.kernel import (
    CostKind,
    ExecutionContext,
    Kernel,
    KernelParams,
    ubuntu_params,
)
from repro.osmodel.netstack import NetStack
from repro.osmodel.threads import (
    PRIORITY_IDLE,
    PRIORITY_REALTIME,
    SimThread,
)
from repro.simcore.process import Interrupted, SimProcess
from repro.units import GB, MB
from repro.virt.guestclock import GuestClock
from repro.virt.profiles import HypervisorProfile, NetMode
from repro.virt.vcpu import VCpu
from repro.virt.vdisk import VirtualDisk
from repro.virt.vnic import VirtualNic


class VmState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    SUSPENDED = "suspended"
    STOPPED = "stopped"


@dataclass(frozen=True)
class VmConfig:
    """User-visible VM configuration (what a .vmx file would say)."""

    name: str = "vm0"
    memory_bytes: int = 300 * MB           # the paper's setting
    priority: int = PRIORITY_IDLE          # volunteer-friendly default
    net_mode: Optional[str] = None         # None = profile default
    vdisk_capacity_bytes: int = 8 * GB
    # guest page cache share; None = half the guest RAM, capped at 160 MB
    guest_cache_bytes: Optional[int] = None
    guest_params: KernelParams = field(default_factory=ubuntu_params)
    boot_delay_s: float = 0.0              # optional simulated boot time

    def __post_init__(self):
        if self.memory_bytes <= 0:
            raise VirtualizationError(
                f"VM memory must be positive, got {self.memory_bytes}"
            )
        if not 1 <= self.priority <= 15:
            raise VirtualizationError(
                f"VM priority must be in [1, 15], got {self.priority}"
            )
        if self.vdisk_capacity_bytes <= 0:
            raise VirtualizationError("vdisk capacity must be positive")
        if (self.guest_cache_bytes is not None
                and self.guest_cache_bytes > self.memory_bytes):
            raise VirtualizationError(
                "guest page cache cannot exceed guest RAM "
                f"({self.guest_cache_bytes} > {self.memory_bytes})"
            )
        if self.boot_delay_s < 0:
            raise VirtualizationError("boot delay cannot be negative")

    @property
    def effective_guest_cache_bytes(self) -> int:
        if self.guest_cache_bytes is not None:
            return self.guest_cache_bytes
        return min(160 * MB, self.memory_bytes // 2)


class GuestExecutionContext(ExecutionContext):
    """Guest flavour: guest-side instruction accounting and syscall costs."""

    def __init__(self, vm: "VirtualMachine", **kwargs):
        super().__init__(kernel=vm.host_kernel, thread=vm.vcpu.thread,
                         charge=vm.vcpu.charge, fs=vm.guest_fs,
                         net=vm.guest_net, **kwargs)
        self.vm = vm

    def instructions(self) -> float:
        """Guest instructions retired (what a guest benchmark counts)."""
        return self.vm.vcpu.guest_instructions

    def cpu_time(self) -> float:
        """Guest CPU time = host CPU time of the vCPU thread."""
        return self.vm.host_kernel.scheduler.cpu_time(self.vm.vcpu.thread)

    def syscall(self):
        yield self.charge(
            self.thread, self.vm.config.guest_params.syscall_cycles,
            _GUEST_SYSCALL_MIX, CostKind.KERNEL_CONTROL,
        )


from repro.hardware.cpu import MIX_KERNEL as _GUEST_SYSCALL_MIX  # noqa: E402


class VirtualMachine:
    """One system-level VM instance hosted on a :class:`Kernel`."""

    def __init__(self, host_kernel: Kernel, profile: HypervisorProfile,
                 config: Optional[VmConfig] = None):
        self.host_kernel = host_kernel
        self.profile = profile
        self.config = config or VmConfig()
        self.engine = host_kernel.engine
        self.state = VmState.CREATED
        self.vcpu: Optional[VCpu] = None
        self.guest_fs: Optional[FileSystem] = None
        self.guest_net: Optional[NetStack] = None
        self.guest_clock: Optional[GuestClock] = None
        self.vdisk: Optional[VirtualDisk] = None
        self.vnic: Optional[VirtualNic] = None
        self.service_threads: List[SimThread] = []
        self._service_procs: List[SimProcess] = []
        self._paused = False
        self.boot_time: Optional[float] = None
        #: Dynamic memory state (working set + balloon), attached by
        #: repro.virt.memory.GuestMemory.start(); None for the paper's
        #: static single-VM configurations.
        self.guest_memory: Optional[object] = None

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        return f"{self.profile.name}:{self.config.name}"

    @property
    def host_machine(self):
        return self.host_kernel.machine

    @property
    def committed_bytes(self) -> int:
        return self.config.memory_bytes + self.profile.vmm_overhead_bytes

    @property
    def image_path(self) -> str:
        return f"/vmimages/{self.name}.img"

    # -- lifecycle ------------------------------------------------------------

    def boot(self) -> Generator:
        """Bring the VM up.  A generator: run it inside a sim process."""
        if self.state is not VmState.CREATED:
            raise VirtualizationError(f"{self.name}: boot() from {self.state}")
        # 1. commit memory on the host — configured RAM + VMM overhead
        self.host_kernel.machine.memory.commit(self.name, self.committed_bytes)

        # 2. vCPU host thread at the configured priority class
        vcpu_thread = self.host_kernel.scheduler.spawn(
            f"{self.name}.vcpu", self.config.priority, group=self.name
        )
        self.vcpu = VCpu(self, vcpu_thread)

        # 3. disk image on the host filesystem + the virtual disk on top
        if not self.host_kernel.fs.exists(self.image_path):
            yield from self.host_kernel.fs.create(
                vcpu_thread, self.image_path,
                size_hint=self.config.vdisk_capacity_bytes,
            )
        self.vdisk = VirtualDisk(self, self.image_path,
                                 self.config.vdisk_capacity_bytes)
        self.guest_fs = FileSystem(
            self.engine, params=self.config.guest_params, disk=self.vdisk,
            charge=self.vcpu.charge,
            cache_bytes=self.config.effective_guest_cache_bytes,
            name=f"{self.name}.guestfs",
        )

        # 4. virtual NIC + guest network stack
        mode = (self.profile.net_mode(self.config.net_mode)
                if self.config.net_mode else self.profile.default_net_mode)
        self.vnic = VirtualNic(self, mode)
        self.guest_net = NetStack(
            self.engine, params=self.config.guest_params, nic=self.vnic,
            charge=self.vcpu.charge, hostname=self.name,
        )
        # host-to-guest traffic goes through the VMM, not the wire
        self.host_kernel.net.register_route(self.guest_net, self.vnic)

        # 5. guest clock + VMM service threads
        self.guest_clock = GuestClock(self.profile, boot_wall=self.engine.now)
        for index, spec in enumerate(self.profile.service_loads):
            thread = self.host_kernel.scheduler.spawn(
                f"{self.name}.{spec.name}", PRIORITY_REALTIME, group=self.name
            )
            self.service_threads.append(thread)
            proc = self.engine.process(
                self._service_loop(spec, thread, primary=(index == 0)),
                name=f"{self.name}.{spec.name}",
            )
            self._service_procs.append(proc)

        self.state = VmState.RUNNING
        self.boot_time = self.engine.now
        if self.config.boot_delay_s > 0:
            yield self.engine.timeout(self.config.boot_delay_s)

    def shutdown(self) -> None:
        """Power off: stop services, exit threads, release host memory."""
        if self.state in (VmState.STOPPED, VmState.CREATED):
            self.state = VmState.STOPPED
            return
        self.state = VmState.STOPPED
        for proc in self._service_procs:
            proc.interrupt("vm shutdown")
        for thread in self.service_threads:
            self.host_kernel.scheduler.exit_thread(thread)
        if self.vcpu is not None:
            self.host_kernel.scheduler.exit_thread(self.vcpu.thread)
        self.host_kernel.machine.memory.release(self.name)

    def register_service(self, thread: Optional[SimThread] = None,
                         proc: Optional[SimProcess] = None) -> None:
        """Attach an auxiliary host-side service to this VM's lifecycle.

        :meth:`shutdown` interrupts registered processes and exits
        registered threads exactly like the profile's built-in service
        loads (the memory ticker in :mod:`repro.virt.memory` uses this).
        """
        if thread is not None:
            self.service_threads.append(thread)
        if proc is not None:
            self._service_procs.append(proc)

    def pause(self) -> None:
        """Suspend guest execution (service load stops accruing)."""
        if self.state is not VmState.RUNNING:
            raise VirtualizationError(f"{self.name}: pause() from {self.state}")
        self._paused = True
        self.state = VmState.SUSPENDED

    def resume(self) -> None:
        if self.state is not VmState.SUSPENDED:
            raise VirtualizationError(f"{self.name}: resume() from {self.state}")
        self._paused = False
        self.state = VmState.RUNNING

    # -- guest access ----------------------------------------------------------

    def guest_context(self, time_source=None,
                      timestamp_source=None) -> GuestExecutionContext:
        """Context for running workloads inside the guest.

        Default ``time_source`` is the (lying-under-load) guest clock;
        pass a :class:`~repro.virt.timeserver.GuestTimeClient` query as
        ``timestamp_source`` for paper-accurate external timing.
        """
        if self.state is not VmState.RUNNING:
            raise VirtualizationError(
                f"{self.name}: guest_context() requires RUNNING, is {self.state}"
            )
        if time_source is None:
            time_source = self.guest_clock.now
        return GuestExecutionContext(
            self, time_source=time_source, timestamp_source=timestamp_source
        )

    # -- VMM service load ------------------------------------------------------

    def _service_loop(self, spec, thread: SimThread, primary: bool) -> Generator:
        """Periodic host-side VMM work at elevated priority.

        The primary service thread also runs guest-clock bookkeeping and
        absorbs the tick catch-up cost (VMware's distinguishing load).
        """
        interval = self.profile.service_interval_s
        freq = self.host_machine.frequency_hz
        scheduler = self.host_kernel.scheduler
        last_wall = self.engine.now
        last_cpu = scheduler.cpu_time(self.vcpu.thread)
        # stagger service phases across VMs/threads: co-hosted VMMs are
        # not phase-locked, so their bursts should not all land together
        # (zlib.crc32: stable across processes, unlike hash())
        import zlib

        digest = zlib.crc32(f"{self.name}/{spec.name}".encode())
        phase = (digest % 997) / 997.0 * interval
        next_t = self.engine.now + phase
        try:
            while self.state is not VmState.STOPPED:
                next_t += interval
                delay = next_t - self.engine.now
                if delay > 0:
                    yield self.engine.timeout(delay)
                if self.state is VmState.STOPPED:
                    return
                if self._paused:
                    last_wall = self.engine.now
                    last_cpu = scheduler.cpu_time(self.vcpu.thread)
                    continue
                cycles = spec.base_frac * interval * freq
                if primary:
                    now_wall = self.engine.now
                    now_cpu = scheduler.cpu_time(self.vcpu.thread)
                    cycles += self.guest_clock.on_service_interval(
                        now_wall - last_wall, now_cpu - last_cpu
                    )
                    last_wall, last_cpu = now_wall, now_cpu
                if cycles > 0:
                    yield scheduler.submit(thread, cycles, MIX_VMM_SERVICE)
        except Interrupted:
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualMachine {self.name} {self.state.value}>"
