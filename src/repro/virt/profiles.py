"""Hypervisor profiles: mechanistic parameters for the four studied VMMs.

Every parameter feeds a *mechanism* (binary-translation multipliers, VM
exits, per-packet device emulation, timer policy); none of the paper's
figure values appear here directly.  Parameters were calibrated against
the paper's published aggregates — the fitting maths lives in
:mod:`repro.calibration.fitting` and a test asserts these constants agree
with a re-fit from the targets.

Parameter groups
----------------
CPU translation (Figures 1–2)
    ``m_int/m_fp/m_mem`` multiply user-mode cycles by instruction class;
    ``m_kernel`` multiplies guest kernel *control* paths (trap-heavy code
    that binary translation rewrites hardest); ``m_copy`` multiplies bulk
    kernel copy loops (string moves run near-native under BT).

Virtual disk (Figure 3)
    Each guest block request costs a VM exit plus device emulation on the
    VMM thread: ``disk_per_request_cycles + disk_per_kb_cycles * KB``.

Virtual NIC (Figure 4)
    Per-packet emulation cycles per network mode.  Bridged VMware taps
    the host bridge cheaply; NAT modes run a user-space translation proxy
    per packet (ruinously expensive in VirtualBox 1.6, per the paper).

Timer / service load (Figures 7–8, ablations)
    Every VMM runs host-side service work (timer & device emulation) at
    elevated priority — this, not the idle-priority vCPU, is what steals
    host CPU.  VMware additionally *catches up* lost timer ticks (its
    timekeeping whitepaper — the paper's reference [22]), burning
    ``catchup_cycles_per_tick`` per replayed tick; the others drop ticks
    beyond a backlog limit, so their guest clocks fall behind instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.units import MB


@dataclass(frozen=True)
class NetMode:
    """One virtual-NIC mode: a name plus per-packet emulation cycles."""

    name: str
    per_packet_cycles: float


@dataclass(frozen=True)
class ServiceLoadSpec:
    """One VMM host-service thread: steady demand as a core fraction."""

    name: str
    base_frac: float


@dataclass(frozen=True)
class HypervisorProfile:
    name: str
    display_name: str
    # CPU translation multipliers
    m_int: float
    m_fp: float
    m_mem: float
    m_kernel: float
    m_copy: float
    # virtual disk
    disk_per_request_cycles: float
    disk_per_kb_cycles: float
    # virtual NIC modes; first entry is the default
    net_modes: Tuple[NetMode, ...]
    # host-side service load
    service_loads: Tuple[ServiceLoadSpec, ...]
    service_interval_s: float = 0.010
    # guest timer policy
    guest_tick_hz: float = 250.0
    tick_catchup: bool = False
    catchup_cycles_per_tick: float = 0.0
    tick_backlog_limit_s: float = 0.25
    # memory
    vmm_overhead_bytes: int = 24 * MB

    def __post_init__(self):
        for attr in ("m_int", "m_fp", "m_mem", "m_kernel", "m_copy"):
            if getattr(self, attr) < 1.0:
                raise ValueError(
                    f"profile {self.name!r}: {attr} must be >= 1 "
                    f"(full virtualisation never beats native)"
                )
        if not self.net_modes:
            raise ValueError(f"profile {self.name!r}: needs >= 1 net mode")

    @property
    def default_net_mode(self) -> NetMode:
        return self.net_modes[0]

    def net_mode(self, name: str) -> NetMode:
        for mode in self.net_modes:
            if mode.name == name:
                return mode
        raise KeyError(
            f"profile {self.name!r} has no net mode {name!r}; "
            f"available: {[m.name for m in self.net_modes]}"
        )

    @property
    def total_service_frac(self) -> float:
        return sum(s.base_frac for s in self.service_loads)


# ---------------------------------------------------------------------------
# The four studied VMMs (versions as benchmarked in the paper).
# ---------------------------------------------------------------------------

VMPLAYER = HypervisorProfile(
    name="vmplayer", display_name="VMware Player 2.0.2",
    # fitted to Fig 1 (1.15x) / Fig 2 (~1.08x): fast BT, small FP gap
    m_int=1.0940, m_fp=1.0775, m_mem=1.0940, m_kernel=4.0, m_copy=1.0940,
    # Fig 3: ~1.3x on disk I/O — the cheapest virtual disk of the set
    disk_per_request_cycles=60_000.0, disk_per_kb_cycles=11_800.0,
    # Fig 4: bridged mode is near-native; NAT collapses to ~3.7 Mbps
    net_modes=(NetMode("bridged", 500.0), NetMode("nat", 7_320_000.0)),
    # Figs 7-8: aggressive timer catch-up makes VMware's service load the
    # heaviest of the set when the vCPU is starved (~0.55 of a core) on
    # top of a 0.10 steady load.
    service_loads=(ServiceLoadSpec("vmx-svc", 0.10),),
    tick_catchup=True, catchup_cycles_per_tick=6_200_000.0,
)

QEMU = HypervisorProfile(
    name="qemu", display_name="QEMU 0.9 + kqemu 1.3",
    # Fig 1: >2x on integer code (dynamic translation), Fig 2: 1.30x FP
    m_int=2.0257, m_fp=1.1719, m_mem=2.0257, m_kernel=12.0, m_copy=2.0257,
    # Fig 3: ~5x — fully emulated IDE device path
    disk_per_request_cycles=220_000.0, disk_per_kb_cycles=163_000.0,
    # Fig 4: user-mode networking, yet the fastest non-bridged stack
    net_modes=(NetMode("user", 104_400.0),),
    service_loads=(ServiceLoadSpec("qemu-timer", 0.20),
                   ServiceLoadSpec("qemu-io", 0.01)),
)

VIRTUALBOX = HypervisorProfile(
    name="virtualbox", display_name="VirtualBox 1.6.2 (OSE)",
    # Fig 1: 1.20x, Fig 2: ~1.12x
    m_int=1.1226, m_fp=1.1195, m_mem=1.1226, m_kernel=5.0, m_copy=1.1226,
    # Fig 3: ~2x
    disk_per_request_cycles=90_000.0, disk_per_kb_cycles=31_000.0,
    # Fig 4: the notorious 1.6-era NAT — ~75x slower than native
    net_modes=(NetMode("nat", 21_260_000.0),),
    service_loads=(ServiceLoadSpec("vbox-svc", 0.20),),
)

VIRTUALPC = HypervisorProfile(
    name="virtualpc", display_name="Microsoft Virtual PC 2007",
    # Fig 1: 1.36x (no Linux guest additions), Fig 2: ~1.18x
    m_int=1.2262, m_fp=1.1718, m_mem=1.2262, m_kernel=8.0, m_copy=1.2262,
    # Fig 3: ~2x with a pricier control path than VirtualBox
    disk_per_request_cycles=140_000.0, disk_per_kb_cycles=44_000.0,
    # Fig 4: shared (NAT-ish) networking at ~35 Mbps
    net_modes=(NetMode("shared", 478_600.0),),
    service_loads=(ServiceLoadSpec("vpc-svc", 0.21),),
)

ALL_PROFILES: Dict[str, HypervisorProfile] = {
    p.name: p for p in (VMPLAYER, QEMU, VIRTUALBOX, VIRTUALPC)
}

# Environment order used throughout figures (paper convention)
PROFILE_ORDER = ("vmplayer", "qemu", "virtualbox", "virtualpc")


def get_profile(name: str) -> HypervisorProfile:
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown hypervisor {name!r}; available: {sorted(ALL_PROFILES)}"
        ) from None
