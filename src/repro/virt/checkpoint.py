"""VM checkpointing: save/restore guest state through the host filesystem.

The paper motivates this feature for desktop grids: "the possibility of
saving the state of the guest OS to persistent storage ... allows
simultaneously for fault tolerance and migration" (§1).  A checkpoint is
the configured guest memory written to a host file (the dominant cost)
plus a small metadata record.  Restoring builds a fresh VM with the
counters and clock state carried over; workload-level state travels as an
opaque dict (BOINC-style applications checkpoint their own progress).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.errors import CheckpointError
from repro.faults import FAULTS
from repro.obs.metrics import METRICS
from repro.osmodel.kernel import Kernel
from repro.units import MB
from repro.virt.profiles import HypervisorProfile, get_profile
from repro.virt.vm import VirtualMachine, VmConfig, VmState

_CHUNK = 1 * MB


@dataclass
class CheckpointImage:
    """Everything needed to resurrect a VM elsewhere."""

    profile_name: str
    config: VmConfig
    guest_instructions: float
    guest_cycles: float
    ticks_delivered: float
    workload_state: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    saved_at: float = 0.0
    path: str = ""


def save_checkpoint(vm: VirtualMachine, path: Optional[str] = None,
                    workload_state: Optional[Dict[str, Any]] = None
                    ) -> Generator:
    """Suspend ``vm`` and write its memory image to the host FS.

    Generator; returns the :class:`CheckpointImage`.  The VM is left
    SUSPENDED — call ``vm.resume()`` to continue locally, or
    ``vm.shutdown()`` before restoring the image on another host.
    """
    if vm.state is not VmState.RUNNING:
        raise CheckpointError(f"{vm.name}: checkpoint requires RUNNING state")
    vm.pause()
    path = path or f"/vmcheckpoints/{vm.name}.ckpt"
    size = vm.committed_bytes
    host_fs = vm.host_kernel.fs
    thread = vm.vcpu.thread
    yield from host_fs.create(thread, path, size_hint=size)
    offset = 0
    while offset < size:
        nbytes = min(_CHUNK, size - offset)
        yield from host_fs.write(thread, path, offset, nbytes)
        offset += nbytes
    yield from host_fs.fsync(thread, path)
    if METRICS.enabled:
        METRICS.inc("virt.ckpt.saves")
        METRICS.inc("virt.ckpt.saved_bytes", size)
    return CheckpointImage(
        profile_name=vm.profile.name,
        config=vm.config,
        guest_instructions=vm.vcpu.guest_instructions,
        guest_cycles=vm.vcpu.guest_cycles,
        ticks_delivered=vm.guest_clock.stats.ticks_delivered,
        workload_state=dict(workload_state or {}),
        size_bytes=size,
        saved_at=vm.engine.now,
        path=path,
    )


def transfer_checkpoint(image: CheckpointImage, src: Kernel, dst: Kernel,
                        thread) -> Generator:
    """Ship a checkpoint file to another host over the network.

    ``thread`` is the source-side thread doing the transfer.  Returns the
    transfer duration.  (Exporting a virtual environment to another
    physical machine is the §1 migration scenario.)
    """
    start = src.engine.now
    listener = dst.net.listen(17001)
    receiver_thread = dst.spawn_thread("ckpt-recv")

    def _receive():
        sock = yield listener.get()
        yield from sock.recv(receiver_thread, image.size_bytes)
        dst_fs_thread = receiver_thread
        yield from dst.fs.create(dst_fs_thread, image.path,
                                 size_hint=image.size_bytes)
        offset = 0
        while offset < image.size_bytes:
            nbytes = min(_CHUNK, image.size_bytes - offset)
            yield from dst.fs.write(dst_fs_thread, image.path, offset, nbytes)
            offset += nbytes
        yield from dst.fs.fsync(dst_fs_thread, image.path)

    recv_proc = src.engine.process(_receive(), name="ckpt-recv")
    sock = yield from src.net.connect(thread, dst.net, 17001)
    # stream the image from the source file
    offset = 0
    while offset < image.size_bytes:
        nbytes = min(4 * _CHUNK, image.size_bytes - offset)
        yield from src.fs.read(thread, image.path, offset, nbytes)
        yield from sock.send(thread, nbytes)
        offset += nbytes
    yield recv_proc
    return src.engine.now - start


def restore_checkpoint(host_kernel: Kernel, image: CheckpointImage,
                       profile: Optional[HypervisorProfile] = None
                       ) -> Generator:
    """Boot a VM from a checkpoint on ``host_kernel``.

    Generator; returns the new :class:`VirtualMachine` with guest-side
    counters and clock state restored.  The caller re-creates the
    workload from ``image.workload_state`` (BOINC semantics).
    """
    if FAULTS.enabled and FAULTS.fires("checkpoint.lost", key=image.path):
        # Transient site: a retried restore of the same image succeeds,
        # modelling a checkpoint file that went missing with its host.
        raise CheckpointError(
            f"injected fault: checkpoint image {image.path!r} lost"
        )
    profile = profile or get_profile(image.profile_name)
    if profile.name != image.profile_name:
        raise CheckpointError(
            f"checkpoint was taken under {image.profile_name!r}, "
            f"cannot restore under {profile.name!r}"
        )
    vm = VirtualMachine(host_kernel, profile, image.config)
    yield from vm.boot()
    # read the memory image back (restore cost)
    if host_kernel.fs.exists(image.path):
        size = min(image.size_bytes, host_kernel.fs.size_of(image.path))
        offset = 0
        while offset < size:
            nbytes = min(4 * _CHUNK, size - offset)
            yield from host_kernel.fs.read(vm.vcpu.thread, image.path,
                                           offset, nbytes)
            offset += nbytes
    vm.vcpu.guest_instructions = image.guest_instructions
    vm.vcpu.guest_cycles = image.guest_cycles
    vm.guest_clock.stats.ticks_delivered = image.ticks_delivered
    if METRICS.enabled:
        METRICS.inc("virt.ckpt.restores")
    return vm
