"""Virtual NIC: per-packet device emulation in front of the host NIC.

Unlike a physical NIC's deep DMA rings, 2008-era emulated NICs copy every
frame through the VMM (and, in NAT modes, through a user-space address
translation proxy).  Consequences modelled here:

* ``serialize_tx = True`` — the guest's send path waits out each frame
  (emulation cost is *additive* with wire time), which is exactly why the
  paper's Figure 4 shows per-VMM throughputs far below wire rate;
* per-packet emulation cycles (mode-dependent) are charged on the vCPU
  host thread before the frame reaches the host NIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import NetworkError
from repro.hardware.cpu import MIX_VMM_SERVICE
from repro.simcore.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.virt.profiles import NetMode
    from repro.virt.vm import VirtualMachine


@dataclass
class VNicStats:
    frames: int = 0
    payload_bytes: int = 0
    emulation_cycles: float = 0.0


class VirtualNic:
    """NIC-like device for the guest network stack."""

    serialize_tx = True

    def __init__(self, vm: "VirtualMachine", mode: "NetMode"):
        self.vm = vm
        self.mode = mode
        self.stats = VNicStats()

    @property
    def mtu_payload_bytes(self) -> int:
        return self.vm.host_machine.nic.mtu_payload_bytes

    def transmit(self, payload_bytes: int, remote=None,
                 on_delivered=None) -> SimEvent:
        """Emulate + forward one frame; event succeeds at tx-complete.

        ``remote`` (the destination NetStack) decides routing: traffic to
        the *host itself* (e.g. the UDP time-server queries the paper
        uses) — or into this guest — is injected through the VMM without
        touching the wire; everything else exits the physical NIC.
        """
        if payload_bytes <= 0:
            raise NetworkError(f"vnic frame of {payload_bytes} bytes")
        done = self.vm.engine.event()
        guest_net = getattr(self.vm, "guest_net", None)
        internal = remote is self.vm.host_kernel.net or (
            guest_net is not None and remote is guest_net
        )
        self.vm.engine.process(
            self._service(payload_bytes, internal, on_delivered, done),
            name=f"{self.vm.name}.vnic",
        )
        return done

    def _service(self, payload_bytes: int, internal: bool, on_delivered,
                 done: SimEvent):
        try:
            yield from self._service_inner(payload_bytes, internal, on_delivered)
        except Exception as error:  # propagate to the guest-side waiter
            done.fail(error)
            return
        done.succeed(None)

    def _service_inner(self, payload_bytes: int, internal: bool, on_delivered):
        self.stats.frames += 1
        self.stats.payload_bytes += payload_bytes
        self.stats.emulation_cycles += self.mode.per_packet_cycles
        # device emulation / NAT proxy on the vCPU host thread
        yield self.vm.vcpu.charge_host_native(
            self.mode.per_packet_cycles, MIX_VMM_SERVICE
        )
        if internal:
            # VMM injects the frame into the host/guest stack directly
            yield self.vm.engine.timeout(20e-6)
            if on_delivered is not None:
                on_delivered()
        else:
            yield self.vm.host_machine.nic.transmit(
                payload_bytes, on_delivered=on_delivered
            )
