"""File-walking driver for the determinism lint (``repro lint``).

Applies :mod:`repro.audit.rules` to a set of files or directories, then
filters findings through two escape hatches:

* **inline allow** — ``# repro: allow-<rule>`` on the flagged line or
  the line directly above silences that rule at that site.  This is the
  preferred hatch: the justification lives next to the code.
* **baseline file** — a JSON file of grandfathered findings (written
  with ``repro lint --write-baseline``) matched by
  ``(relative path, rule, stripped source line)`` so entries survive
  unrelated edits that shift line numbers.  Baselined entries never
  block CI; entries that no longer match anything are reported as stale
  so the baseline shrinks monotonically.

The shipped tree is baseline-clean: every intended host-clock site is
inline-annotated, so ``repro lint src/`` needs no baseline at all.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.audit.rules import RULES, Violation, check_source

#: Baseline file schema identifier.
LINT_BASELINE_SCHEMA = "repro-lint-baseline/1"

_ALLOW_PREFIX = "repro: allow-"


@dataclass
class LintReport:
    """Outcome of one lint run."""
    violations: List[Violation] = field(default_factory=list)
    suppressed_inline: int = 0
    suppressed_baseline: int = 0
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)   # unparseable files

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif path.endswith(".py"):
            out.append(path)
    return sorted(dict.fromkeys(out))


def _inline_allowed(lines: List[str], violation: Violation) -> bool:
    token = _ALLOW_PREFIX + violation.rule
    for lineno in (violation.line, violation.line - 1):
        if 1 <= lineno <= len(lines) and token in lines[lineno - 1]:
            return True
    return False


def _context_line(lines: List[str], lineno: int) -> str:
    if 1 <= lineno <= len(lines):
        return lines[lineno - 1].strip()
    return ""


def _baseline_key(violation: Violation,
                  lines: List[str]) -> Tuple[str, str, str]:
    path = violation.rel if violation.rel is not None else violation.path
    return (path, violation.rule, _context_line(lines, violation.line))


def load_baseline(path: str) -> List[Dict[str, str]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("schema") != LINT_BASELINE_SCHEMA:
        raise ValueError(
            f"unrecognised lint baseline schema {data.get('schema')!r} "
            f"in {path} (expected {LINT_BASELINE_SCHEMA})")
    return list(data.get("entries", []))


def write_baseline(path: str, violations: List[Violation],
                   sources: Dict[str, List[str]]) -> int:
    """Write every current finding as a baseline entry; returns count."""
    entries = []
    for violation in violations:
        rel_path, rule, context = _baseline_key(
            violation, sources.get(violation.path, []))
        entries.append({"path": rel_path, "rule": rule,
                        "context": context})
    entries.sort(key=lambda e: (e["path"], e["rule"], e["context"]))
    payload = {"schema": LINT_BASELINE_SCHEMA, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def lint_paths(paths: Iterable[str],
               baseline: Optional[List[Dict[str, str]]] = None,
               ) -> Tuple[LintReport, Dict[str, List[str]]]:
    """Lint files/directories; returns the report plus per-file source
    lines (the CLI reuses them for ``--write-baseline``)."""
    report = LintReport()
    sources: Dict[str, List[str]] = {}
    remaining: List[Dict[str, str]] = [dict(e) for e in (baseline or [])]
    for path in iter_python_files(paths):
        report.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            found = check_source(source, path)
        except (OSError, SyntaxError) as exc:
            report.errors.append(f"{path}: {exc}")
            continue
        lines = source.splitlines()
        sources[path] = lines
        for violation in found:
            if _inline_allowed(lines, violation):
                report.suppressed_inline += 1
                continue
            rel_path, rule, context = _baseline_key(violation, lines)
            matched = None
            for entry in remaining:
                if entry.get("path") == rel_path \
                        and entry.get("rule") == rule \
                        and entry.get("context") == context:
                    matched = entry
                    break
            if matched is not None:
                remaining.remove(matched)
                report.suppressed_baseline += 1
                continue
            report.violations.append(violation)
    report.stale_baseline = remaining
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report, sources


def format_report(report: LintReport, verbose: bool = False) -> str:
    """Human-readable report, one finding per line."""
    lines = [violation.format() for violation in report.violations]
    lines.extend(f"error: {message}" for message in report.errors)
    for entry in report.stale_baseline:
        lines.append("stale baseline entry (code no longer matches): "
                     f"{entry.get('path')}: {entry.get('rule')}: "
                     f"{entry.get('context')}")
    summary = (f"{report.files_checked} file(s) checked, "
               f"{len(report.violations)} violation(s), "
               f"{report.suppressed_inline} inline-allowed, "
               f"{report.suppressed_baseline} baselined")
    if report.errors:
        summary += f", {len(report.errors)} unparseable"
    lines.append(summary)
    if verbose or not report.violations:
        pass
    else:
        lines.append("silence a finding with '# repro: allow-<rule>' on "
                     "the offending line, or record the current state "
                     "with --write-baseline")
    return "\n".join(lines)


def list_rules() -> str:
    """One line per rule for ``repro lint --rules``."""
    width = max(len(rule_id) for rule_id in RULES)
    return "\n".join(f"{rule_id.ljust(width)}  {rule.summary}"
                     for rule_id, rule in sorted(RULES.items()))
