"""Rolling trace-hash checkpoints: the runtime half of the audit layer.

The determinism contract says a figure run is byte-identical serial vs
``--jobs N`` vs seed-replay.  The figures themselves prove the *end*
state; the trace hash proves the *path*: every engine dispatch is folded
into a rolling SHA-256, checkpointed once per simulated-time window, so
two runs can be compared window by window and a divergence localised to
the first window (and, with capture, the first event) that differs.

Guard contract (same as :class:`repro.simcore.trace.Tracer` and
:data:`repro.obs.metrics.METRICS`): the recorder is **disabled by
default** and a disabled recorder costs one attribute read at engine
construction plus one ``is None`` branch per dispatched event on the
``step()`` path — the inlined ``Engine.run`` drain loop stays entirely
untouched when hashing is off.

Stream identity
---------------
Each :class:`~repro.simcore.engine.Engine` opens one **stream** when the
recorder is enabled, keyed ``<context>/engine<ordinal>``.  The context
is set by the repetition harness (``g<group>/rep<n>``, where ``group``
is a monotone per-run counter allocated once per repeater run and
``rep`` the repetition index), so the serial path and every ``--jobs N``
fan-out produce the *same* stream keys for the same logical work —
which is what makes the snapshots comparable at all.  Persistent pool
workers (:mod:`repro.core.workerpool`) re-arm their process-private
recorder per task from the spec's shipped context — enablement, window
and capture target all travel with the task, so a recorder enabled
*after* the pool was forked still records — then reset it and ship a
snapshot back in the ``WorkerResult`` payload; the parent folds it in.

Checkpoint format (``repro-trace-hash/1``)::

    {"schema": "repro-trace-hash/1",
     "window_s": 1.0,
     "streams": {"g0/rep0/engine0": [[0, "9f86d081884c7d65", 412],
                                     [1, "60303ae22b998861", 388], ...]},
     "captured": {"g0/rep0/engine0": {"window": 1,
                                      "events": [[when, seq, name], ...]}}}

Each stream entry is ``[window_index, digest, events_in_window]`` for
every *non-empty* window, in order.  Digests chain: window ``n`` hashes
its events on top of window ``n-1``'s digest, so any prefix mismatch
propagates — the first differing checkpoint IS the first diverging
window (see :mod:`repro.audit.bisect`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

#: Snapshot schema identifier.
TRACE_HASH_SCHEMA = "repro-trace-hash/1"

#: Default simulated-time window per checkpoint, in seconds.
DEFAULT_WINDOW_S = 1.0

#: Context used for engines created outside any repetition harness.
DEFAULT_CONTEXT = "main"


def _event_name(fn: Any) -> str:
    """Deterministic label for a dispatched callback.

    ``__qualname__`` for functions and bound methods; the type name for
    callables without one (e.g. ``functools.partial``).  Never uses
    ``repr`` — default reprs embed addresses, which differ across
    processes.
    """
    name = getattr(fn, "__qualname__", None)
    return name if name is not None else type(fn).__name__


class StreamHash:
    """Rolling windowed hash of one engine's dispatch sequence."""

    __slots__ = ("key", "window_s", "checkpoints", "_digest", "_hash",
                 "_window", "_count", "_capture_window", "captured")

    def __init__(self, key: str, window_s: float,
                 capture_window: Optional[int] = None):
        self.key = key
        self.window_s = window_s
        #: Finalised ``[window_index, digest, count]`` checkpoints.
        self.checkpoints: List[List[Any]] = []
        self._digest = ""            # previous window's digest (chain seed)
        self._hash: Optional[Any] = None
        self._window: Optional[int] = None
        self._count = 0
        self._capture_window = capture_window
        #: Raw ``(when, seq, name)`` events of the captured window.
        self.captured: List[Tuple[float, int, str]] = []

    def _open_window(self, window: int) -> None:
        h = hashlib.sha256()
        h.update(self._digest.encode("ascii"))
        h.update(str(window).encode("ascii"))
        self._hash = h
        self._window = window
        self._count = 0

    def _flush(self) -> None:
        if self._hash is None or self._count == 0:
            return
        self._digest = self._hash.hexdigest()[:16]
        self.checkpoints.append([self._window, self._digest, self._count])

    def update(self, when: float, seq: int, fn: Any) -> None:
        """Fold one dispatched event into the current window."""
        window = int(when // self.window_s)
        if window != self._window:
            self._flush()
            self._open_window(window)
        self._hash.update(f"{when!r}|{seq}|{_event_name(fn)}\n"
                          .encode("utf-8"))
        self._count += 1
        if window == self._capture_window:
            self.captured.append((when, seq, _event_name(fn)))

    def snapshot_checkpoints(self) -> List[List[Any]]:
        """Checkpoints including the still-open window (non-destructive)."""
        out = [list(item) for item in self.checkpoints]
        if self._hash is not None and self._count > 0:
            out.append([self._window, self._hash.hexdigest()[:16],
                        self._count])
        return out


class TraceHashRecorder:
    """Process-global registry of per-engine :class:`StreamHash` streams.

    Disabled by default; :func:`repro.api.run_figure` enables it when
    the run config's ``trace_hash`` knob is set.  ``capture`` names one
    ``(stream_key, window_index)`` whose raw events should be retained —
    the bisector's second pass uses it to print an event-level diff.
    """

    __slots__ = ("enabled", "window_s", "capture", "_streams", "_imported",
                 "_captured", "_context", "_ordinals", "_groups")

    def __init__(self, enabled: bool = False,
                 window_s: float = DEFAULT_WINDOW_S):
        self.enabled = enabled
        self.window_s = window_s
        self.capture: Optional[Tuple[str, int]] = None
        self._streams: Dict[str, StreamHash] = {}
        #: Checkpoint lists merged from worker snapshots.
        self._imported: Dict[str, List[List[Any]]] = {}
        self._captured: Dict[str, Dict[str, Any]] = {}
        self._context = DEFAULT_CONTEXT
        self._ordinals: Dict[str, int] = {}
        self._groups = 0

    # -- lifecycle -------------------------------------------------------

    def enable(self, window_s: Optional[float] = None,
               reset: bool = True) -> None:
        if window_s is not None:
            self.window_s = window_s
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all streams and context state (``capture`` persists)."""
        self._streams.clear()
        self._imported.clear()
        self._captured.clear()
        self._context = DEFAULT_CONTEXT
        self._ordinals.clear()
        self._groups = 0

    # -- context (set by the repetition harness) -------------------------

    def begin_group(self) -> int:
        """Allocate the next repeater-run group id (monotone per run).

        Both the serial and the parallel repetition paths allocate
        exactly one group per repeater run, in the same deterministic
        order, so stream keys line up across worker counts.
        """
        group = self._groups
        self._groups += 1
        return group

    def set_context(self, label: str) -> None:
        """Label streams opened from now on (e.g. ``g0/rep2``)."""
        self._context = label

    def clear_context(self) -> None:
        self._context = DEFAULT_CONTEXT

    # -- stream registration (called by Engine.__init__) -----------------

    def open_stream(self) -> Optional[StreamHash]:
        """A new stream for one engine; ``None`` when disabled."""
        if not self.enabled:
            return None
        ordinal = self._ordinals.get(self._context, 0)
        self._ordinals[self._context] = ordinal + 1
        key = f"{self._context}/engine{ordinal}"
        capture_window = None
        if self.capture is not None and self.capture[0] == key:
            capture_window = self.capture[1]
        stream = StreamHash(key, self.window_s, capture_window)
        self._streams[key] = stream
        return stream

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe copy of every stream's checkpoints, sorted by key."""
        streams: Dict[str, List[List[Any]]] = dict(self._imported)
        for key, stream in self._streams.items():
            streams[key] = stream.snapshot_checkpoints()
        captured: Dict[str, Dict[str, Any]] = {
            key: {"window": value["window"],
                  "events": [list(event) for event in value["events"]]}
            for key, value in self._captured.items()
        }
        for key, stream in self._streams.items():
            if stream.captured:
                captured[key] = {
                    "window": stream._capture_window,
                    "events": [list(event) for event in stream.captured],
                }
        return {
            "schema": TRACE_HASH_SCHEMA,
            "window_s": self.window_s,
            "streams": {key: streams[key] for key in sorted(streams)},
            "captured": {key: captured[key] for key in sorted(captured)},
        }

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot` into this recorder.

        Worker stream keys are unique per repetition context, so a merge
        is a plain union; a retried repetition re-runs identically and
        simply overwrites its earlier (possibly partial) streams.
        """
        if not self.enabled or not snap:
            return
        for key, checkpoints in snap.get("streams", {}).items():
            self._imported[key] = [list(item) for item in checkpoints]
            self._streams.pop(key, None)
        for key, value in snap.get("captured", {}).items():
            self._captured[key] = {
                "window": value["window"],
                "events": [list(event) for event in value["events"]],
            }


#: The process-global recorder every engine consults at construction.
TRACE_HASH = TraceHashRecorder(enabled=False)
