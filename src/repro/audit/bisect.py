"""Trace-hash comparison and the ``repro audit`` divergence bisector.

Given two ``repro-trace-hash/1`` snapshots (see
:mod:`repro.audit.tracehash`), :func:`compare_snapshots` lists every
stream/window pair that differs.  Because window digests *chain*, the
first differing checkpoint in a stream is exactly the first simulated
window where the two runs dispatched different events; everything after
it differs by construction, so :func:`first_divergence` is a true
bisection result, not a heuristic.

:func:`audit_figure` is the driver behind ``repro audit FIG``: it
regenerates one figure three times under identical seeds — serial,
``--jobs N``, and a serial seed-replay — with trace-hashing on and the
cache off (a cache hit would skip the engine entirely), then compares
the snapshots pairwise.  On mismatch it re-runs the two diverging
configurations once more with event *capture* focused on the first
diverging window and renders an event-level diff.

This is the white-box sibling of the ``repro chaos`` drill: chaos
proves the *outputs* survive injected faults byte-identically; audit
proves the *execution path* is identical event-for-event, and when it
is not, says where it first stopped being.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class StreamDivergence:
    """One stream/window pair that differs between two snapshots."""
    stream: str
    window: Optional[int]   # None for whole-stream presence mismatches
    kind: str               # "digest" | "count" | "missing" | "extra"
    detail: str


def _checkpoint_maps(snapshot: Dict[str, Any]
                     ) -> Dict[str, List[List[Any]]]:
    return snapshot.get("streams", {}) if snapshot else {}


def compare_snapshots(a: Dict[str, Any], b: Dict[str, Any]
                      ) -> List[StreamDivergence]:
    """Every divergence between two trace-hash snapshots.

    Within one stream only the *first* differing window is reported —
    chained digests make every later window differ mechanically, which
    would drown the signal.
    """
    out: List[StreamDivergence] = []
    streams_a = _checkpoint_maps(a)
    streams_b = _checkpoint_maps(b)
    for key in sorted(set(streams_a) | set(streams_b)):
        if key not in streams_b:
            out.append(StreamDivergence(
                key, None, "missing",
                "stream present in first run only"))
            continue
        if key not in streams_a:
            out.append(StreamDivergence(
                key, None, "extra",
                "stream present in second run only"))
            continue
        cps_a, cps_b = streams_a[key], streams_b[key]
        for index in range(max(len(cps_a), len(cps_b))):
            if index >= len(cps_a):
                window, digest, count = cps_b[index]
                out.append(StreamDivergence(
                    key, int(window), "extra",
                    f"second run has {len(cps_b) - len(cps_a)} extra "
                    f"window(s) from window {window}"))
                break
            if index >= len(cps_b):
                window, digest, count = cps_a[index]
                out.append(StreamDivergence(
                    key, int(window), "missing",
                    f"first run has {len(cps_a) - len(cps_b)} extra "
                    f"window(s) from window {window}"))
                break
            win_a, dig_a, cnt_a = cps_a[index]
            win_b, dig_b, cnt_b = cps_b[index]
            if (win_a, dig_a, cnt_a) == (win_b, dig_b, cnt_b):
                continue
            if win_a != win_b:
                detail = f"window index {win_a} vs {win_b}"
                window = min(int(win_a), int(win_b))
                kind = "digest"
            elif cnt_a != cnt_b:
                detail = f"{cnt_a} vs {cnt_b} events"
                window, kind = int(win_a), "count"
            else:
                detail = f"digest {dig_a} vs {dig_b} ({cnt_a} events)"
                window, kind = int(win_a), "digest"
            out.append(StreamDivergence(key, window, kind, detail))
            break
    return out


def first_divergence(divergences: List[StreamDivergence]
                     ) -> Optional[StreamDivergence]:
    """The divergence in the earliest simulated window (stream name
    breaks ties; presence mismatches sort last)."""
    if not divergences:
        return None
    return min(divergences,
               key=lambda d: (d.window is None,
                              d.window if d.window is not None else 0,
                              d.stream))


def format_event_diff(events_a: List[List[Any]],
                      events_b: List[List[Any]],
                      label_a: str, label_b: str,
                      context: int = 3) -> str:
    """Side-by-side diff of two captured windows' event lists.

    Events are ``[when, seq, name]``.  Prints ``context`` matching
    events before the first mismatch, then up to ``context`` events of
    each side from the mismatch on.
    """
    first = None
    for index in range(max(len(events_a), len(events_b))):
        ev_a = events_a[index] if index < len(events_a) else None
        ev_b = events_b[index] if index < len(events_b) else None
        if ev_a != ev_b:
            first = index
            break
    if first is None:
        return "captured windows are identical"

    def _fmt(event: Optional[List[Any]]) -> str:
        if event is None:
            return "(no event)"
        when, seq, name = event
        return f"t={when!r} seq={seq} {name}"

    lines = [f"first differing event at index {first} "
             f"({len(events_a)} vs {len(events_b)} events in window)"]
    start = max(0, first - context)
    for index in range(start, first):
        lines.append(f"    = {_fmt(events_a[index])}")
    for index in range(first, min(first + context,
                                  max(len(events_a), len(events_b)))):
        ev_a = events_a[index] if index < len(events_a) else None
        ev_b = events_b[index] if index < len(events_b) else None
        marker = "=" if ev_a == ev_b else "!"
        lines.append(f"  {marker} {label_a}: {_fmt(ev_a)}")
        if marker == "!":
            lines.append(f"  {marker} {label_b}: {_fmt(ev_b)}")
    return "\n".join(lines)


@dataclass
class AuditComparison:
    """Pairwise snapshot comparison between two labelled runs."""
    label_a: str
    label_b: str
    divergences: List[StreamDivergence] = field(default_factory=list)
    figures_identical: bool = True

    @property
    def clean(self) -> bool:
        return self.figures_identical and not self.divergences


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_figure` drill."""
    fig_id: str
    jobs: int
    window_s: float
    streams: int                #: streams in the serial baseline
    windows: int                #: total checkpoints in the baseline
    events: int                 #: total hashed events in the baseline
    comparisons: List[AuditComparison] = field(default_factory=list)
    first: Optional[StreamDivergence] = None
    event_diff: Optional[str] = None

    @property
    def clean(self) -> bool:
        return all(comparison.clean for comparison in self.comparisons)

    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render(self) -> str:
        lines = [f"audit {self.fig_id}: {self.streams} stream(s), "
                 f"{self.windows} window(s) of {self.window_s}s, "
                 f"{self.events} event(s) hashed"]
        for comparison in self.comparisons:
            if comparison.clean:
                lines.append(f"  {comparison.label_a} vs "
                             f"{comparison.label_b}: OK "
                             "(figures byte-identical, 0 diverging "
                             "windows)")
                continue
            status = []
            if not comparison.figures_identical:
                status.append("FIGURES DIFFER")
            if comparison.divergences:
                status.append(f"{len(comparison.divergences)} diverging "
                              "stream(s)")
            lines.append(f"  {comparison.label_a} vs "
                         f"{comparison.label_b}: " + ", ".join(status))
            for divergence in comparison.divergences[:8]:
                where = (f"window {divergence.window}"
                         if divergence.window is not None else "stream")
                lines.append(f"    {divergence.stream} [{where}] "
                             f"{divergence.kind}: {divergence.detail}")
        if self.first is not None:
            lines.append(f"first divergence: {self.first.stream} "
                         f"window {self.first.window} "
                         f"({self.first.kind}: {self.first.detail})")
        if self.event_diff:
            lines.append(self.event_diff)
        lines.append("audit " + ("PASSED" if self.clean else "FAILED"))
        return "\n".join(lines)


def _figure_bytes(result: Any) -> bytes:
    import json
    return json.dumps(result.figure.to_dict(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def audit_figure(fig_id: str, jobs: int = 4,
                 config: Optional[Any] = None,
                 window_s: Optional[float] = None,
                 capture_on_divergence: bool = True,
                 **kwargs: Any) -> AuditReport:
    """Run the serial / parallel / replay drill for one figure."""
    from repro import api
    from repro.audit.tracehash import TRACE_HASH

    base = (config if config is not None else api.RunConfig.from_env())
    base = base.with_overrides(cache=False, metrics=False,
                               trace_hash=True, fault_spec=None)
    if window_s is not None:
        TRACE_HASH.window_s = window_s

    def _run(label: str, run_jobs: int) -> Any:
        return api.run(api.RunRequest(
            kind="figure", target=fig_id,
            config=base.with_overrides(jobs=run_jobs), options=kwargs))

    runs = [("serial", 1), (f"jobs{jobs}", jobs), ("replay", 1)]
    results = {label: _run(label, run_jobs) for label, run_jobs in runs}

    baseline = results["serial"].trace_hash or {}
    checkpoints = baseline.get("streams", {})
    report = AuditReport(
        fig_id=fig_id, jobs=jobs,
        window_s=float(baseline.get("window_s", TRACE_HASH.window_s)),
        streams=len(checkpoints),
        windows=sum(len(cps) for cps in checkpoints.values()),
        events=int(sum(item[2] for cps in checkpoints.values()
                       for item in cps)),
    )
    serial_bytes = _figure_bytes(results["serial"])
    diverged: Optional[Tuple[str, str]] = None
    for label, _run_jobs in runs[1:]:
        comparison = AuditComparison("serial", label)
        comparison.figures_identical = (
            _figure_bytes(results[label]) == serial_bytes)
        comparison.divergences = compare_snapshots(
            baseline, results[label].trace_hash or {})
        report.comparisons.append(comparison)
        if comparison.divergences and diverged is None:
            diverged = ("serial", label)
            report.first = first_divergence(comparison.divergences)

    if diverged is not None and capture_on_divergence \
            and report.first is not None \
            and report.first.window is not None:
        label = diverged[1]
        run_jobs = dict(runs)[label]
        TRACE_HASH.capture = (report.first.stream, report.first.window)
        try:
            recap_a = _run("capture-serial", 1)
            recap_b = _run(f"capture-{label}", run_jobs)
        finally:
            TRACE_HASH.capture = None
        captured_a = (recap_a.trace_hash or {}).get("captured", {}) \
            .get(report.first.stream, {})
        captured_b = (recap_b.trace_hash or {}).get("captured", {}) \
            .get(report.first.stream, {})
        report.event_diff = format_event_diff(
            captured_a.get("events", []), captured_b.get("events", []),
            "serial", label)
    return report
