"""Determinism audit layer: static lint + runtime divergence bisector.

Two enforcement mechanisms for the repo's byte-identical-replay
contract, one static and one dynamic:

* :mod:`repro.audit.rules` / :mod:`repro.audit.linter` — an AST lint
  (``repro lint``) banning the coding patterns that break deterministic
  replay: host-clock reads, global RNG use, scattered ``os.environ``
  reads, unordered iteration, and order-sensitive float reductions.
* :mod:`repro.audit.tracehash` / :mod:`repro.audit.bisect` — rolling
  SHA-256 trace-hash checkpoints emitted by the engine per simulated
  window (``TRACE_HASH``, off by default under the Tracer/METRICS guard
  contract) and the ``repro audit`` drill that compares serial vs
  ``--jobs N`` vs seed-replay runs and bisects a mismatch to the first
  diverging window.
"""

from repro.audit.bisect import (
    AuditComparison,
    AuditReport,
    StreamDivergence,
    audit_figure,
    compare_snapshots,
    first_divergence,
    format_event_diff,
)
from repro.audit.linter import (
    LINT_BASELINE_SCHEMA,
    LintReport,
    format_report,
    iter_python_files,
    lint_paths,
    list_rules,
    load_baseline,
    write_baseline,
)
from repro.audit.rules import (
    RULES,
    Rule,
    Violation,
    check_source,
    module_rel_path,
)
from repro.audit.tracehash import (
    DEFAULT_WINDOW_S,
    TRACE_HASH,
    TRACE_HASH_SCHEMA,
    StreamHash,
    TraceHashRecorder,
)

__all__ = [
    "AuditComparison",
    "AuditReport",
    "DEFAULT_WINDOW_S",
    "LINT_BASELINE_SCHEMA",
    "LintReport",
    "RULES",
    "Rule",
    "StreamDivergence",
    "StreamHash",
    "TRACE_HASH",
    "TRACE_HASH_SCHEMA",
    "TraceHashRecorder",
    "Violation",
    "audit_figure",
    "check_source",
    "compare_snapshots",
    "first_divergence",
    "format_event_diff",
    "format_report",
    "iter_python_files",
    "lint_paths",
    "list_rules",
    "load_baseline",
    "module_rel_path",
    "write_baseline",
]
