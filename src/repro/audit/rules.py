"""AST lint rules enforcing the determinism contract's coding discipline.

Each rule names a *bug class* that has historically broken byte-identical
replay in desktop-grid style simulators (and, per ISSUE 5, three of which
were found live in this repo):

``wall-clock``
    Host-clock reads.  Non-monotonic reads (``time.time``,
    ``datetime.now``, ...) are banned outside ``obs/`` — wall time
    belongs in run manifests, never in results or elapsed-time maths
    (an NTP step makes ``time.time()`` deltas negative).  Monotonic
    reads (``perf_counter``, ``monotonic``) are fine in harness code
    (``api.py`` timing, ``cli.py``, ``core/``) but banned in *sim*
    packages, where the only legitimate clock is ``engine.now``.

``global-random``
    Global-RNG use: the ``random`` module, ``numpy.random`` module-level
    convenience functions, or an argument-less ``default_rng()``.  All
    randomness must flow from an explicit seed through
    ``numpy.random.Generator(PCG64(seed))`` / ``RngStreams`` so
    repetitions replay from ``derive_rep_seed``.

``env-read``
    ``os.environ`` / ``os.getenv`` reads outside ``RunConfig.from_env``
    — the single sanctioned environment interpreter.  Scattered env
    reads are exactly the implicit-policy smear ``repro.api`` exists to
    remove (writes, e.g. the CLI's legacy ``REPRO_JOBS`` propagation,
    are not flagged).

``unsorted-iter``
    ``for`` iteration over a ``set``/``frozenset`` expression in sim
    code.  Set order depends on insertion history and hash seeds;
    state-mutating loops over one diverge across runs.  Wrap in
    ``sorted(...)``.  (``dict`` iteration is insertion-ordered on every
    supported interpreter and exempt by design.)

``float-sum``
    ``sum()`` over a set expression or a comprehension drawn from one.
    Float addition is not associative, so an unordered reduction can
    differ in the last ulp between runs — enough to break byte-identical
    figures.

Every rule honours an inline ``# repro: allow-<rule>`` escape hatch on
the flagged line or the line above (applied by
:mod:`repro.audit.linter`), and the linter supports a JSON baseline
file for grandfathered sites.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Sim packages: the only clock is simulated time, the only RNG a seeded
#: stream.  Paths are relative to the ``repro`` package root.
SIM_DIRS = ("simcore", "osmodel", "hardware", "virt", "workloads",
            "fleet", "grid")

#: Non-monotonic host-clock reads (jump with NTP/DST; never subtract).
WALL_FNS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.gmtime",
    "time.localtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Monotonic host-clock reads (fine for harness timing, banned in sim).
MONO_FNS = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns",
})

#: Set-returning methods whose result order is undefined.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


@dataclass(frozen=True)
class Rule:
    id: str
    summary: str


RULES: Dict[str, Rule] = {rule.id: rule for rule in (
    Rule("wall-clock",
         "host-clock read outside the allowlist (obs/ for wall time; "
         "harness layers for monotonic timers)"),
    Rule("global-random",
         "global / unseeded RNG use; seed an explicit "
         "numpy.random.Generator instead"),
    Rule("env-read",
         "os.environ read outside RunConfig.from_env"),
    Rule("unsorted-iter",
         "iteration over an unsorted set in sim code; wrap in sorted()"),
    Rule("float-sum",
         "float sum() over an unordered container"),
)}


@dataclass(frozen=True)
class Violation:
    """One lint finding, locatable and baseline-matchable."""
    path: str           # as given to the linter
    rel: Optional[str]  # path relative to the repro package root, if any
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")


def module_rel_path(path: str) -> Optional[str]:
    """Path relative to the ``repro`` package root, or ``None``.

    Files outside a ``repro`` package (fixtures, scratch files) get the
    *strictest* treatment — every sim-only rule applies — so the lint's
    own self-tests exercise all rules from a temp directory.
    """
    parts = path.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return None


def _is_sim_path(rel: Optional[str]) -> bool:
    if rel is None:
        return True
    return rel.split("/", 1)[0] in SIM_DIRS


def _is_obs_path(rel: Optional[str]) -> bool:
    return rel is not None and rel.startswith("obs/")


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor resolving imports to dotted names and
    applying every rule."""

    def __init__(self, rel: Optional[str]):
        self.rel = rel
        self.sim = _is_sim_path(rel)
        self.obs = _is_obs_path(rel)
        self.violations: List[Tuple[int, int, str, str]] = []
        self._modules: Dict[str, str] = {}   # local name -> module
        self._names: Dict[str, str] = {}     # local name -> dotted name
        self._func_stack: List[str] = []

    # -- import tracking -------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self._modules[alias.asname] = alias.name
            else:
                root = alias.name.split(".", 1)[0]
                self._modules[root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self._names[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _resolve(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._names.get(node.id) or self._modules.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            return f"{base}.{node.attr}" if base else None
        return None

    # -- scope tracking (for the from_env exemption) ---------------------

    def _visit_func(self, node) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    def _in_from_env(self) -> bool:
        return "from_env" in self._func_stack

    # -- findings --------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            (node.lineno, node.col_offset, rule, message))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._resolve(node.func)
        if dotted is not None:
            self._check_clock(node, dotted)
            self._check_random(node, dotted)
            if dotted in ("os.getenv", "os.environ.get") \
                    and not self._in_from_env():
                self._flag(node, "env-read",
                           f"{dotted}() outside RunConfig.from_env; "
                           "policy belongs in repro.api.RunConfig")
        if isinstance(node.func, ast.Name) and node.func.id == "sum" \
                and node.args and _is_unordered_source(node.args[0]):
            self._flag(node, "float-sum",
                       "sum() over an unordered container; float "
                       "addition order changes the result — sort first")
        self.generic_visit(node)

    def _check_clock(self, node: ast.Call, dotted: str) -> None:
        if dotted in WALL_FNS:
            if not self.obs:
                self._flag(node, "wall-clock",
                           f"non-monotonic {dotted}() outside obs/; "
                           "use time.perf_counter() for elapsed time, "
                           "obs manifests for wall time")
        elif dotted in MONO_FNS and self.sim:
            self._flag(node, "wall-clock",
                       f"host clock {dotted}() in sim code; simulated "
                       "time comes from engine.now")

    def _check_random(self, node: ast.Call, dotted: str) -> None:
        if dotted == "random" or dotted.startswith("random."):
            self._flag(node, "global-random",
                       f"global {dotted}() call; use a seeded "
                       "numpy.random.Generator / RngStreams stream")
        elif dotted == "numpy.random.default_rng":
            if not node.args:
                self._flag(node, "global-random",
                           "default_rng() without a seed is "
                           "OS-entropy-seeded; pass an explicit seed")
        elif dotted.startswith("numpy.random."):
            tail = dotted.rsplit(".", 1)[1]
            if tail.islower():
                self._flag(node, "global-random",
                           f"{dotted}() uses numpy's global RNG; use a "
                           "seeded numpy.random.Generator")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load) \
                and self._resolve(node.value) == "os.environ" \
                and not self._in_from_env():
            self._flag(node, "env-read",
                       "os.environ[...] read outside RunConfig.from_env; "
                       "policy belongs in repro.api.RunConfig")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.sim and _is_unordered_source(node.iter):
            self._flag(node, "unsorted-iter",
                       "iteration over an unsorted set in sim code; "
                       "wrap in sorted(...) to fix the visit order")
        self.generic_visit(node)


def _is_unordered_source(node: ast.AST) -> bool:
    """Does this expression produce an unordered container?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return any(_is_unordered_source(gen.iter)
                   for gen in node.generators)
    return False


def check_source(source: str, path: str) -> List[Violation]:
    """Run every rule over one file's source; raises ``SyntaxError`` on
    unparseable input (the linter reports it as a failure)."""
    tree = ast.parse(source, filename=path)
    rel = module_rel_path(path)
    visitor = _RuleVisitor(rel)
    visitor.visit(tree)
    return [Violation(path=path, rel=rel, line=line, col=col,
                      rule=rule, message=message)
            for line, col, rule, message in visitor.violations]
