"""Unit constants and conversion helpers used across the simulator.

Conventions
-----------
* time        : seconds (float)
* cycles      : CPU clock cycles (float; fractional cycles are fine for
                aggregate accounting)
* frequency   : Hz
* data sizes  : bytes (int where the quantity is exact, float for rates)
* data rates  : bytes/second unless a name says otherwise (``*_mbps``)

These conventions are relied on by every subsystem; helpers here are the
single place where scale factors live so magic numbers do not spread.
"""

from __future__ import annotations

# --- data sizes -----------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# --- time -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
MINUTE = 60.0

# --- frequency ------------------------------------------------------------

KHZ = 1e3
MHZ = 1e6
GHZ = 1e9


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert a megabit-per-second rate (network convention, 10^6) to B/s."""
    return mbps * 1e6 / 8.0


def bytes_per_sec_to_mbps(rate: float) -> float:
    """Convert a byte-per-second rate to megabits per second (10^6)."""
    return rate * 8.0 / 1e6


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Time taken to retire ``cycles`` at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Cycles retired in ``seconds`` at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def mib(nbytes: float) -> float:
    """Express a byte count in MiB (for reporting)."""
    return nbytes / MB


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count: ``fmt_bytes(1536) == '1.5 KB'``."""
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration: picks µs/ms/s/min as appropriate."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"
