"""repro — reproduction of "Evaluating the Performance and Intrusiveness
of Virtual Machines for Desktop Grid Computing" (Domingues, Araújo,
Silva; IPPS/IPDPS 2009).

The package simulates the paper's entire testbed — a dual-core machine,
a Windows-XP-like host OS, a Linux guest, and mechanistic models of
VMware Player, QEMU(+kqemu), VirtualBox and VirtualPC — and re-runs both
of its experiments:

1. guest performance (7z, Matrix, IOBench, NetBench — Figures 1-4),
2. host intrusiveness under an Einstein@home volunteer load
   (NBench indexes, 7z usage/MIPS — Figures 5-8).

Quick start::

    from repro.api import RunConfig, RunRequest, run
    from repro.core import ascii_bar_chart

    result = run(RunRequest(kind="figure", target="fig1",
                            config=RunConfig(fast=True)))
    print(ascii_bar_chart(result.figure))

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
vs paper values.  :mod:`repro.api` is the run-configuration front door;
:mod:`repro.obs` holds the metrics registry and run manifests;
:mod:`repro.campaign` plans and schedules declarative scenario grids
over the same :func:`repro.api.run` path.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
