"""Network stack model: TCP-ish streams and UDP datagrams over NIC devices.

Fidelity choices (documented, deliberate):

* A stream transfer is segmented at the device MTU.  The sender charges
  per-packet kernel cycles, then hands the frame to the device.
* Real NICs have deep rings, so the host stack *pipelines*: CPU cost
  overlaps wire time and throughput is wire-limited (native iperf hits
  97.6 Mbps).  Emulated virtual NICs copy each frame through the VMM, so
  a device can declare ``serialize_tx = True`` and the sender then waits
  out each frame before the next — making per-packet CPU *additive* with
  wire time.  This additive-vs-pipelined distinction is the entire story
  of the paper's Figure 4.
* No loss, congestion or retransmission: the testbed is an idle switched
  100 Mbps LAN where none of those occur at measurable rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from repro.errors import NetworkError
from repro.hardware.cpu import MIX_KERNEL
from repro.osmodel.kernel import ChargeFn, CostKind, KernelParams
from repro.osmodel.threads import SimThread
from repro.simcore.engine import Engine
from repro.simcore.events import SimEvent
from repro.simcore.resources import Store


class LoopbackDevice:
    """Intra-machine transfers: no wire, tiny latency, never serialises."""

    serialize_tx = False
    mtu_payload_bytes = 16 * 1024

    def __init__(self, engine: Engine, latency_s: float = 10e-6):
        self.engine = engine
        self.latency_s = latency_s

    def transmit(self, payload_bytes: int, remote=None,
                 on_delivered=None) -> SimEvent:
        del payload_bytes, remote
        done = self.engine.event()
        self.engine.schedule(self.latency_s, done.succeed, None)
        if on_delivered is not None:
            self.engine.schedule(self.latency_s, on_delivered)
        return done


@dataclass
class NetStats:
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    connections: int = 0


class TcpSocket:
    """One end of an established stream."""

    def __init__(self, stack: "NetStack", device, name: str):
        self.stack = stack
        self.device = device
        self.name = name
        self.peer: Optional["TcpSocket"] = None
        self.rx = Store(stack.engine, name=f"{name}.rx")
        self.closed = False

    # -- data path -----------------------------------------------------------

    def send(self, thread: SimThread, nbytes: int) -> Generator:
        """Send ``nbytes``; returns when the last byte has left the wire."""
        if self.closed or self.peer is None:
            raise NetworkError(f"send on closed socket {self.name!r}")
        if nbytes <= 0:
            raise NetworkError(f"send size must be positive, got {nbytes}")
        mtu = self.device.mtu_payload_bytes
        serialize = getattr(self.device, "serialize_tx", False)
        remaining = nbytes
        last_ev: Optional[SimEvent] = None
        while remaining > 0:
            payload = min(mtu, remaining)
            remaining -= payload
            yield self.stack.charge(
                thread, self.stack.params.net_send_per_packet_cycles,
                MIX_KERNEL, CostKind.KERNEL_CONTROL,
            )
            peer = self.peer
            ev = self.device.transmit(
                payload, remote=self.peer.stack,
                on_delivered=lambda p=payload, pr=peer: pr._deliver(p),
            )
            self.stack.stats.packets_sent += 1
            self.stack.stats.bytes_sent += payload
            if serialize:
                yield ev
            last_ev = ev
        if last_ev is not None and not last_ev.triggered:
            yield last_ev

    def _deliver(self, payload: int) -> None:
        self.rx.put(payload)
        self.stack.stats.packets_received += 1
        self.stack.stats.bytes_received += payload

    def recv(self, thread: SimThread, nbytes: int) -> Generator:
        """Receive until ``nbytes`` have arrived; returns the byte count."""
        if nbytes <= 0:
            raise NetworkError(f"recv size must be positive, got {nbytes}")
        received = 0
        while received < nbytes:
            payload = yield self.rx.get()
            yield self.stack.charge(
                thread, self.stack.params.net_recv_per_packet_cycles,
                MIX_KERNEL, CostKind.KERNEL_CONTROL,
            )
            received += payload
        return received

    def close(self) -> None:
        self.closed = True
        if self.peer is not None:
            self.peer.closed = True


class UdpSocket:
    """Datagram socket; payloads are opaque Python objects plus a size."""

    def __init__(self, stack: "NetStack", port: int):
        self.stack = stack
        self.port = port
        self.rx = Store(stack.engine, name=f"udp:{port}.rx")

    def sendto(self, thread: SimThread, remote: "NetStack", port: int,
               payload: Any, nbytes: int = 64) -> Generator:
        device = self.stack.device_for(remote)
        yield self.stack.charge(
            thread, self.stack.params.net_send_per_packet_cycles,
            MIX_KERNEL, CostKind.KERNEL_CONTROL,
        )
        source = self.stack
        ev = device.transmit(
            min(nbytes, device.mtu_payload_bytes), remote=remote,
            on_delivered=lambda: remote._udp_deliver(port, payload, source),
        )
        if getattr(device, "serialize_tx", False):
            yield ev
        self.stack.stats.packets_sent += 1
        self.stack.stats.bytes_sent += nbytes

    def recvfrom(self, thread: SimThread) -> Generator:
        """Blocks for one datagram; returns ``(payload, source_stack)``."""
        message = yield self.rx.get()
        yield self.stack.charge(
            thread, self.stack.params.net_recv_per_packet_cycles,
            MIX_KERNEL, CostKind.KERNEL_CONTROL,
        )
        self.stack.stats.packets_received += 1
        return message


class NetStack:
    """One machine's (or one guest's) network stack."""

    def __init__(self, engine: Engine, params: KernelParams, nic,
                 charge: ChargeFn, hostname: str = "host"):
        self.engine = engine
        self.params = params
        self.nic = nic
        self.charge = charge
        self.hostname = hostname
        self.loopback = LoopbackDevice(engine)
        self.stats = NetStats()
        self._listeners: Dict[int, Store] = {}
        self._udp_ports: Dict[int, UdpSocket] = {}
        self._socket_seq = 0
        self._routes: Dict[int, Any] = {}

    # -- device selection ------------------------------------------------

    def register_route(self, remote: "NetStack", device) -> None:
        """Route traffic for ``remote`` through ``device`` instead of the
        NIC.  Used by VMs: a guest stack is reached *through the VMM*,
        not over the physical wire."""
        self._routes[id(remote)] = device

    def device_for(self, remote: "NetStack"):
        if remote is self:
            return self.loopback
        return self._routes.get(id(remote), self.nic)

    # -- TCP ---------------------------------------------------------------

    def listen(self, port: int) -> Store:
        """Returns the accept queue; ``yield queue.get()`` accepts a socket."""
        if port in self._listeners:
            raise NetworkError(f"port {port} already listening on {self.hostname}")
        queue = Store(self.engine, name=f"{self.hostname}:listen:{port}")
        self._listeners[port] = queue
        return queue

    def connect(self, thread: SimThread, remote: "NetStack",
                port: int) -> Generator:
        """Three-way-handshake-shaped connect; returns the client socket."""
        accept_queue = remote._listeners.get(port)
        if accept_queue is None:
            raise NetworkError(
                f"connection refused: {remote.hostname}:{port} not listening"
            )
        yield self.charge(thread, self.params.syscall_cycles, MIX_KERNEL,
                          CostKind.KERNEL_CONTROL)
        device = self.device_for(remote)
        # SYN / SYN-ACK: two small frames end to end.
        for _ in range(2):
            yield device.transmit(64, remote=remote)
        self._socket_seq += 1
        name = f"{self.hostname}:conn{self._socket_seq}"
        client = TcpSocket(self, device, name + ".client")
        server = TcpSocket(remote, remote.device_for(self), name + ".server")
        client.peer = server
        server.peer = client
        self.stats.connections += 1
        accept_queue.put(server)
        return client

    # -- UDP ---------------------------------------------------------------

    def udp_socket(self, port: int) -> UdpSocket:
        if port in self._udp_ports:
            raise NetworkError(f"UDP port {port} in use on {self.hostname}")
        sock = UdpSocket(self, port)
        self._udp_ports[port] = sock
        return sock

    def _udp_deliver(self, port: int, payload: Any, source: "NetStack") -> None:
        sock = self._udp_ports.get(port)
        if sock is not None:  # silently drop to closed ports, like real UDP
            sock.rx.put((payload, source))
