"""Clock models.

The host's :class:`SystemClock` is accurate but *coarse* (Windows XP's
tick is ~15.6 ms; Linux's 1–4 ms): reads are quantised to the resolution.
Guest clocks (which lose ticks under load) live in
:mod:`repro.virt.guestclock`; both expose ``now()`` so measurement code is
agnostic.

The paper works around guest-clock lies by timing guest benchmarks against
an external UDP time server on the host (§4) — reproduced in
:mod:`repro.virt.timeserver`.
"""

from __future__ import annotations

from typing import Callable

from repro.simcore.engine import Engine


class SystemClock:
    """The OS clock API: true time quantised to the OS tick resolution."""

    def __init__(self, engine: Engine, resolution_s: float = 1e-3,
                 offset_s: float = 0.0):
        if resolution_s < 0:
            raise ValueError(f"resolution must be >= 0, got {resolution_s}")
        self.engine = engine
        self.resolution_s = resolution_s
        self.offset_s = offset_s

    def now(self) -> float:
        raw = self.engine.now + self.offset_s
        if self.resolution_s <= 0:
            return raw
        ticks = int(raw / self.resolution_s)
        return ticks * self.resolution_s


class StopwatchClock:
    """Wraps any ``now()`` source into interval measurements.

    Used by benchmark harnesses: ``t = sw.elapsed()`` semantics with the
    clock the *benchmark* would have used (guest clock, UDP server, ...).
    """

    def __init__(self, time_source: Callable[[], float]):
        self._source = time_source
        self._start = time_source()

    def restart(self) -> None:
        self._start = self._source()

    def elapsed(self) -> float:
        return self._source() - self._start
