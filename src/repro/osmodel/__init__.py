"""Operating-system models: scheduler, kernel, filesystem, network, clocks."""

from repro.osmodel.filesystem import PAGE_BYTES, FileNode, FileSystem, FsStats
from repro.osmodel.kernel import (
    CostKind,
    ExecutionContext,
    Kernel,
    KernelParams,
    ubuntu_params,
    windows_xp_params,
)
from repro.osmodel.netstack import (
    LoopbackDevice,
    NetStack,
    NetStats,
    TcpSocket,
    UdpSocket,
)
from repro.osmodel.scheduler import BoostPolicy, CoreState, Scheduler
from repro.osmodel.threads import (
    PRIORITY_ABOVE_NORMAL,
    PRIORITY_BELOW_NORMAL,
    PRIORITY_HIGH,
    PRIORITY_IDLE,
    PRIORITY_NORMAL,
    PRIORITY_REALTIME,
    OsProcess,
    SimThread,
    ThreadState,
)
from repro.osmodel.timekeeping import StopwatchClock, SystemClock

__all__ = [
    "BoostPolicy",
    "CoreState",
    "CostKind",
    "ExecutionContext",
    "FileNode",
    "FileSystem",
    "FsStats",
    "Kernel",
    "KernelParams",
    "LoopbackDevice",
    "NetStack",
    "NetStats",
    "OsProcess",
    "PAGE_BYTES",
    "PRIORITY_ABOVE_NORMAL",
    "PRIORITY_BELOW_NORMAL",
    "PRIORITY_HIGH",
    "PRIORITY_IDLE",
    "PRIORITY_NORMAL",
    "PRIORITY_REALTIME",
    "Scheduler",
    "SimThread",
    "StopwatchClock",
    "SystemClock",
    "TcpSocket",
    "ThreadState",
    "UdpSocket",
    "ubuntu_params",
    "windows_xp_params",
]
