"""OS kernel model: syscall costs, processes, and execution contexts.

The kernel is a thin orchestration layer that:

* owns a :class:`Scheduler`, a :class:`FileSystem`, a :class:`NetStack`
  and a :class:`SystemClock` for one machine;
* charges CPU for kernel work through a pluggable *charge function* so the
  same filesystem/netstack code runs natively (×1) and inside a guest
  (×hypervisor translation multipliers);
* hands workloads an :class:`ExecutionContext` — the only API benchmarks
  see, which is what lets one workload implementation run unchanged on
  native Linux, on the Windows host, or inside any VM.

Cost kinds
----------
Hypervisors penalise kernel *control* paths (traps, page-table and device
fiddling — heavily rewritten under binary translation) far more than bulk
*copy* loops (string moves run mostly native).  The paper's Figure 3 vs
Figure 1 gap depends on this distinction, so every kernel charge carries a
:class:`CostKind`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.errors import ReproError
from repro.hardware.cpu import MIX_KERNEL, InstructionMix
from repro.hardware.machine import Machine
from repro.osmodel.scheduler import BoostPolicy, Scheduler
from repro.osmodel.threads import PRIORITY_NORMAL, OsProcess, SimThread
from repro.osmodel.timekeeping import SystemClock
from repro.simcore.engine import Engine
from repro.simcore.events import SimEvent
from repro.units import KB


class CostKind(enum.Enum):
    """What kind of code a CPU charge represents (drives VM multipliers)."""

    USER = "user"                      # application code
    KERNEL_CONTROL = "kernel_control"  # syscall dispatch, drivers, VFS
    KERNEL_COPY = "kernel_copy"        # bulk data movement in kernel mode


# A charge function executes `cycles` of `kind` work on `thread` and
# returns the completion event.  The native one submits to the scheduler
# unchanged; the guest one (repro.virt) scales cycles by the hypervisor's
# translation multipliers first.
ChargeFn = Callable[[SimThread, float, InstructionMix, CostKind], SimEvent]


@dataclass(frozen=True)
class KernelParams:
    """Per-OS cost constants (cycles unless noted)."""

    name: str = "generic"
    syscall_cycles: float = 1_500.0
    fs_per_op_cycles: float = 12_000.0    # one read()/write() control path
    fs_per_kb_cycles: float = 550.0       # copy + page-cache bookkeeping
    net_send_per_packet_cycles: float = 3_000.0
    net_recv_per_packet_cycles: float = 3_500.0
    page_cache_bytes: int = 384 * 1024 * KB  # default grown/shrunk by Kernel
    timer_hz: float = 100.0
    clock_resolution_s: float = 1e-3      # granularity of the OS clock API


def windows_xp_params() -> KernelParams:
    """The paper's host OS (Windows XP SP2)."""
    return KernelParams(
        name="windows-xp", syscall_cycles=1_800.0, fs_per_op_cycles=14_000.0,
        fs_per_kb_cycles=600.0, net_send_per_packet_cycles=3_200.0,
        net_recv_per_packet_cycles=3_800.0, timer_hz=64.0,
        clock_resolution_s=15.6e-3,
    )


def ubuntu_params() -> KernelParams:
    """The paper's guest / native-comparison OS (Ubuntu Linux)."""
    return KernelParams(
        name="ubuntu-linux", syscall_cycles=1_400.0, fs_per_op_cycles=11_000.0,
        fs_per_kb_cycles=520.0, net_send_per_packet_cycles=2_800.0,
        net_recv_per_packet_cycles=3_300.0, timer_hz=250.0,
        clock_resolution_s=1e-6,  # gettimeofday is microsecond-accurate
    )


class Kernel:
    """An OS instance installed on a machine."""

    def __init__(self, engine: Engine, machine: Machine,
                 params: Optional[KernelParams] = None,
                 name: Optional[str] = None,
                 boost: Optional[BoostPolicy] = None,
                 page_cache_bytes: Optional[int] = None):
        from repro.osmodel.filesystem import FileSystem
        from repro.osmodel.netstack import NetStack

        self.engine = engine
        self.machine = machine
        self.params = params or ubuntu_params()
        self.name = name or f"{self.params.name}@{machine.name}"
        self.scheduler = Scheduler(engine, machine, boost=boost)
        self.clock = SystemClock(engine, resolution_s=self.params.clock_resolution_s)
        cache_bytes = (page_cache_bytes if page_cache_bytes is not None
                       else self.params.page_cache_bytes)
        self.fs = FileSystem(
            engine, params=self.params, disk=machine.disk,
            charge=self.charge_native, cache_bytes=cache_bytes,
            name=f"{self.name}.fs",
        )
        self.net = NetStack(
            engine, params=self.params, nic=machine.nic,
            charge=self.charge_native, hostname=self.name,
        )
        self.processes: list[OsProcess] = []

    # -- CPU charging ------------------------------------------------------

    def charge_native(self, thread: SimThread, cycles: float,
                      mix: InstructionMix, kind: CostKind) -> SimEvent:
        """Native charge: cycles hit the scheduler unchanged."""
        del kind  # native execution does not distinguish
        return self.scheduler.submit(thread, cycles, mix)

    # -- process / thread management -----------------------------------------

    def create_process(self, name: str, memory_bytes: int = 0) -> OsProcess:
        process = OsProcess(name, memory_bytes)
        if memory_bytes:
            self.machine.memory.commit(name, memory_bytes)
        self.processes.append(process)
        return process

    def destroy_process(self, process: OsProcess) -> None:
        for thread in process.threads:
            self.scheduler.exit_thread(thread)
        if process.memory_bytes:
            self.machine.memory.release(process.name, process.memory_bytes)
        if process in self.processes:
            self.processes.remove(process)

    def spawn_thread(self, name: str, priority: int = PRIORITY_NORMAL,
                     process: Optional[OsProcess] = None) -> SimThread:
        return self.scheduler.spawn(name, priority, process)

    def context(self, thread: SimThread,
                time_source: Optional[Callable[[], float]] = None) -> "ExecutionContext":
        """An execution context for workload code on ``thread``."""
        return ExecutionContext(self, thread, charge=self.charge_native,
                                time_source=time_source)


class ExecutionContext:
    """What a benchmark sees: compute, file I/O, network, clocks.

    ``time_source`` is the *measurement* clock (the paper carefully uses an
    external UDP time server for guest-side measurements because guest
    clocks lie under load); it defaults to the kernel's own clock.
    """

    def __init__(self, kernel: Kernel, thread: SimThread, charge: ChargeFn,
                 time_source: Optional[Callable[[], float]] = None,
                 timestamp_source: Optional[Callable[[], Generator]] = None,
                 fs=None, net=None):
        self.kernel = kernel
        self.thread = thread
        self.charge = charge
        self.fs = fs if fs is not None else kernel.fs
        self.net = net if net is not None else kernel.net
        self._time_source = time_source
        self._timestamp_source = timestamp_source

    # -- clocks ------------------------------------------------------------

    def time(self) -> float:
        """Measurement clock (may be inaccurate inside a guest)."""
        if self._time_source is not None:
            return self._time_source()
        return self.kernel.clock.now()

    def timestamp(self) -> Generator:
        """Accurate measurement timestamp (generator — may cost real work).

        Natively this is just the OS clock; a guest context wires this to
        a UDP time-server query, exactly as the paper does to sidestep
        guest-clock lies (§4: "time measurements ... were done resorting
        to an external time reference").
        """
        if self._timestamp_source is not None:
            value = yield from self._timestamp_source()
            return value
        return self.time()

    def true_time(self) -> float:
        """Oracle wall time — for tests and clock-error studies only."""
        return self.kernel.engine.now

    def cpu_time(self) -> float:
        return self.kernel.scheduler.cpu_time(self.thread)

    def instructions(self) -> float:
        return self.kernel.scheduler.instructions(self.thread)

    # -- compute -------------------------------------------------------------

    def compute(self, instructions: float, mix: InstructionMix) -> Generator:
        """Execute ``instructions`` of ``mix``; yields until retired."""
        if instructions < 0:
            raise ReproError(f"negative instruction count: {instructions}")
        cycles = mix.cycles_for(instructions)
        yield self.charge(self.thread, cycles, mix, CostKind.USER)

    def compute_cycles(self, cycles: float, mix: InstructionMix,
                       kind: CostKind = CostKind.USER) -> Generator:
        yield self.charge(self.thread, cycles, mix, kind)

    def syscall(self) -> Generator:
        """One bare syscall round trip."""
        yield self.charge(self.thread, self.kernel.params.syscall_cycles,
                          MIX_KERNEL, CostKind.KERNEL_CONTROL)

    def sleep(self, seconds: float) -> Generator:
        yield self.kernel.engine.timeout(seconds)

    # -- file I/O -----------------------------------------------------------

    def fcreate(self, path: str, size_hint: int = 0) -> Generator:
        yield from self.fs.create(self.thread, path, size_hint)

    def fwrite(self, path: str, offset: int, nbytes: int) -> Generator:
        yield from self.fs.write(self.thread, path, offset, nbytes)

    def fread(self, path: str, offset: int, nbytes: int) -> Generator:
        yield from self.fs.read(self.thread, path, offset, nbytes)

    def fsync(self, path: str) -> Generator:
        yield from self.fs.fsync(self.thread, path)

    def fdelete(self, path: str) -> Generator:
        yield from self.fs.delete(self.thread, path)
