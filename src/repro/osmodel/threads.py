"""Thread and process objects managed by the OS scheduler model.

Priority values follow Windows XP base-priority conventions because the
paper's host OS is XP and Figure 5–8 behaviour depends on its priority
classes (the VM is run at *normal* and at *idle* class):

====================  =====
class                 base
====================  =====
REALTIME/kernel work   15
HIGH                   13
ABOVE_NORMAL           10
NORMAL                  8
BELOW_NORMAL            6
IDLE                    4
====================  =====
"""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.hardware.cpu import MIX_IDLE, InstructionMix

if TYPE_CHECKING:  # pragma: no cover
    from repro.simcore.events import SimEvent

PRIORITY_REALTIME = 15
PRIORITY_HIGH = 13
PRIORITY_ABOVE_NORMAL = 10
PRIORITY_NORMAL = 8
PRIORITY_BELOW_NORMAL = 6
PRIORITY_IDLE = 4


class ThreadState(enum.Enum):
    BLOCKED = "blocked"  # no CPU demand outstanding
    READY = "ready"      # runnable, waiting for a core
    RUNNING = "running"  # on a core
    DONE = "done"        # exited


class SimThread:
    """A schedulable thread.  All mutation goes through the scheduler."""

    __slots__ = (
        "name", "base_priority", "state", "core",
        "mix", "remaining_cycles", "completion",
        "quantum_used", "rr_seq", "last_ran_at", "ready_since",
        "boost_cpu_remaining", "group",
        "cpu_seconds", "cycles_retired", "instructions_retired",
        "segments_completed", "process",
    )

    def __init__(self, name: str, base_priority: int = PRIORITY_NORMAL,
                 process: Optional["OsProcess"] = None,
                 group: Optional[str] = None):
        if not 1 <= base_priority <= 15:
            raise ValueError(f"priority must be in [1, 15], got {base_priority}")
        self.name = name
        self.base_priority = base_priority
        # Affinity group: threads of one VM share a group so elevated
        # VMM service work displaces its *own* vCPU before foreign
        # threads (device/timer emulation interrupts guest execution).
        self.group = group
        self.state = ThreadState.BLOCKED
        self.core: Optional[int] = None
        self.mix: InstructionMix = MIX_IDLE
        self.remaining_cycles = 0.0
        self.completion: Optional["SimEvent"] = None
        self.quantum_used = 0.0
        self.rr_seq = 0
        self.last_ran_at = 0.0
        self.ready_since = 0.0
        self.boost_cpu_remaining = 0.0
        self.cpu_seconds = 0.0
        self.cycles_retired = 0.0
        self.instructions_retired = 0.0
        self.segments_completed = 0
        self.process = process

    @property
    def effective_priority(self) -> int:
        """Base priority, or the anti-starvation boost ceiling while boosted."""
        if self.boost_cpu_remaining > 0.0:
            return PRIORITY_REALTIME
        return self.base_priority

    @property
    def runnable(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.RUNNING)

    def sort_key(self):
        """Scheduler ordering: higher effective priority first, then FIFO
        within a priority level (``rr_seq`` is the round-robin counter)."""
        return (-self.effective_priority, self.rr_seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimThread {self.name!r} {self.state.value} prio={self.base_priority}"
            f" rem={self.remaining_cycles:.0f}cyc>"
        )


class OsProcess:
    """A process: a named group of threads plus a memory commitment."""

    def __init__(self, name: str, memory_bytes: int = 0):
        self.name = name
        self.memory_bytes = memory_bytes
        self.threads: list[SimThread] = []

    def add_thread(self, thread: SimThread) -> None:
        thread.process = self
        self.threads.append(thread)

    @property
    def cpu_seconds(self) -> float:
        return sum(t.cpu_seconds for t in self.threads)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OsProcess {self.name!r} threads={len(self.threads)}>"
