"""Filesystem model: VFS + page cache + block layer.

Granularity is a 64 KB cache chunk ("page" below, loosely): fine enough to
capture partial-file caching, coarse enough to keep event counts low.

Cost model per call:

* ``fs_per_op_cycles`` of kernel *control* work (dispatch, VFS, mapping),
* ``fs_per_kb_cycles`` × KB of kernel *copy* work,
* disk requests only for cache misses (reads) and for ``fsync``/eviction
  (writes — the cache is write-back; there is deliberately no background
  flusher so runs are deterministic, and IOBench calls fsync explicitly).

The distinction between control and copy charges matters inside a guest:
hypervisor binary translation multiplies control paths much more than copy
loops (see :class:`repro.osmodel.kernel.CostKind`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import FileSystemError
from repro.hardware.cpu import MIX_KERNEL
from repro.osmodel.kernel import ChargeFn, CostKind, KernelParams
from repro.osmodel.threads import SimThread
from repro.simcore.engine import Engine
from repro.units import KB, MB

PAGE_BYTES = 64 * KB
_FILE_REGION_BYTES = 128 * MB  # disk address space reserved per file


@dataclass
class FileNode:
    """An inode: size plus the file's reserved region on the disk."""

    path: str
    disk_base: int
    region_bytes: int
    size: int = 0


@dataclass
class FsStats:
    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    fsyncs: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class FileSystem:
    """One mounted filesystem over one disk-like device.

    ``disk`` needs only ``submit(nbytes, offset, is_write) -> SimEvent``;
    the native FS gets a :class:`repro.hardware.disk.Disk`, a guest FS gets
    a :class:`repro.virt.vdisk.VirtualDisk`.
    """

    def __init__(self, engine: Engine, params: KernelParams, disk,
                 charge: ChargeFn, cache_bytes: int, name: str = "fs"):
        if cache_bytes < PAGE_BYTES:
            raise FileSystemError(
                f"page cache must hold at least one page ({PAGE_BYTES} B)"
            )
        self.engine = engine
        self.params = params
        self.disk = disk
        self.charge = charge
        self.name = name
        self.capacity_pages = cache_bytes // PAGE_BYTES
        self.files: Dict[str, FileNode] = {}
        # LRU: key -> dirty flag.  Most-recently-used at the end.
        self._cache: "OrderedDict[Tuple[str, int], bool]" = OrderedDict()
        self._next_base = 0
        self.stats = FsStats()

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def create(self, thread: SimThread, path: str,
               size_hint: int = 0) -> Generator:
        """Create an empty file (idempotent: truncates an existing one).

        ``size_hint`` grows the file's reserved disk region beyond the
        default when the caller knows it will be big (VM images,
        checkpoint files)."""
        yield from self._charge_op(thread)
        node = self.files.get(path)
        if node is None:
            region = max(_FILE_REGION_BYTES, _round_up_pages(size_hint))
            node = FileNode(path, self._allocate_region(region), region)
            self.files[path] = node
        else:
            self._drop_pages(path)
        node.size = 0

    def delete(self, thread: SimThread, path: str) -> Generator:
        yield from self._charge_op(thread)
        if path not in self.files:
            raise FileSystemError(f"delete: no such file {path!r}")
        self._drop_pages(path)
        del self.files[path]

    def exists(self, path: str) -> bool:
        return path in self.files

    def size_of(self, path: str) -> int:
        node = self.files.get(path)
        if node is None:
            raise FileSystemError(f"stat: no such file {path!r}")
        return node.size

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------

    def write(self, thread: SimThread, path: str, offset: int,
              nbytes: int) -> Generator:
        """Buffered write: dirties cache pages; disk only on eviction/fsync."""
        node = self._node(path)
        self._check_range(node, offset, nbytes)
        yield from self._charge_op(thread)
        yield from self._charge_copy(thread, nbytes)
        node.size = max(node.size, offset + nbytes)
        first, last = self._page_span(offset, nbytes)
        for page in range(first, last + 1):
            yield from self._cache_insert(thread, path, page, dirty=True)
        self.stats.writes += 1
        self.stats.bytes_written += nbytes

    def read(self, thread: SimThread, path: str, offset: int,
             nbytes: int) -> Generator:
        """Read: serves from cache, fetching missing ranges from disk."""
        node = self._node(path)
        if offset + nbytes > node.size:
            raise FileSystemError(
                f"read past EOF on {path!r}: [{offset}, {offset + nbytes})"
                f" > size {node.size}"
            )
        yield from self._charge_op(thread)
        first, last = self._page_span(offset, nbytes)
        missing = [p for p in range(first, last + 1)
                   if (path, p) not in self._cache]
        self.stats.cache_hits += (last - first + 1) - len(missing)
        self.stats.cache_misses += len(missing)
        for start, count in _coalesce(missing):
            ev = self.disk.submit(
                count * PAGE_BYTES, node.disk_base + start * PAGE_BYTES,
                is_write=False,
            )
            yield ev
            for page in range(start, start + count):
                yield from self._cache_insert(thread, path, page, dirty=False)
        # touch hit pages for LRU recency
        for page in range(first, last + 1):
            key = (path, page)
            if key in self._cache:
                self._cache.move_to_end(key)
        yield from self._charge_copy(thread, nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes

    def fsync(self, thread: SimThread, path: str) -> Generator:
        """Flush the file's dirty pages to disk (coalesced, in order)."""
        node = self._node(path)
        yield from self._charge_op(thread)
        dirty = sorted(p for (f, p), d in self._cache.items()
                       if f == path and d)
        for start, count in _coalesce(dirty):
            ev = self.disk.submit(
                count * PAGE_BYTES, node.disk_base + start * PAGE_BYTES,
                is_write=True,
            )
            yield ev
            for page in range(start, start + count):
                self._cache[(path, page)] = False
        flush = getattr(self.disk, "flush", None)
        if flush is not None:
            ev = flush()
            if ev is not None:
                yield ev
        self.stats.fsyncs += 1

    def drop_caches(self) -> None:
        """Evict all *clean* pages (cold-read experiments).  Dirty pages
        stay — call fsync first for a fully cold cache."""
        for key in [k for k, dirty in self._cache.items() if not dirty]:
            del self._cache[key]

    @property
    def cached_pages(self) -> int:
        return len(self._cache)

    @property
    def dirty_pages(self) -> int:
        return sum(1 for d in self._cache.values() if d)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _node(self, path: str) -> FileNode:
        node = self.files.get(path)
        if node is None:
            raise FileSystemError(f"no such file: {path!r}")
        return node

    def _allocate_region(self, region_bytes: int) -> int:
        base = self._next_base
        self._next_base += region_bytes
        capacity = getattr(getattr(self.disk, "spec", None), "capacity_bytes", None)
        if capacity is not None and self._next_base > capacity:
            raise FileSystemError(f"filesystem {self.name!r} out of space")
        return base

    @staticmethod
    def _page_span(offset: int, nbytes: int) -> Tuple[int, int]:
        if nbytes <= 0:
            raise FileSystemError(f"I/O size must be positive, got {nbytes}")
        return offset // PAGE_BYTES, (offset + nbytes - 1) // PAGE_BYTES

    def _check_range(self, node: FileNode, offset: int, nbytes: int) -> None:
        if offset < 0:
            raise FileSystemError(f"negative offset: {offset}")
        if offset + nbytes > node.region_bytes:
            raise FileSystemError(
                f"{node.path!r} would exceed its {node.region_bytes}-byte "
                f"region (pass size_hint to create for large files)"
            )

    def _charge_op(self, thread: SimThread) -> Generator:
        yield self.charge(thread, self.params.fs_per_op_cycles, MIX_KERNEL,
                          CostKind.KERNEL_CONTROL)

    def _charge_copy(self, thread: SimThread, nbytes: int) -> Generator:
        cycles = self.params.fs_per_kb_cycles * (nbytes / KB)
        yield self.charge(thread, cycles, MIX_KERNEL, CostKind.KERNEL_COPY)

    def _cache_insert(self, thread: SimThread, path: str, page: int,
                      dirty: bool) -> Generator:
        key = (path, page)
        if key in self._cache:
            self._cache[key] = self._cache[key] or dirty
            self._cache.move_to_end(key)
            return
        while len(self._cache) >= self.capacity_pages:
            victim, victim_dirty = self._cache.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                victim_node = self.files.get(victim[0])
                if victim_node is not None:
                    ev = self.disk.submit(
                        PAGE_BYTES,
                        victim_node.disk_base + victim[1] * PAGE_BYTES,
                        is_write=True,
                    )
                    yield ev
        self._cache[key] = dirty

    def _drop_pages(self, path: str) -> None:
        for key in [k for k in self._cache if k[0] == path]:
            del self._cache[key]


def _round_up_pages(nbytes: int) -> int:
    """Round a size hint up to a whole number of cache pages."""
    if nbytes <= 0:
        return 0
    pages = (nbytes + PAGE_BYTES - 1) // PAGE_BYTES
    return pages * PAGE_BYTES


def _coalesce(pages: List[int]) -> List[Tuple[int, int]]:
    """Group a sorted page list into (start, count) contiguous runs."""
    runs: List[Tuple[int, int]] = []
    for page in pages:
        if runs and runs[-1][0] + runs[-1][1] == page:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((page, 1))
    return runs
