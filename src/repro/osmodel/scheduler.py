"""Preemptive multi-core priority scheduler (Windows-XP-flavoured).

Mechanisms modelled — each one is load-bearing for a paper figure:

* **Strict priority with round-robin time slicing** within a level
  (quantum default 20 ms).  An idle-class VM thread therefore starves
  while two normal-class 7z threads own both cores (Figure 7).
* **Balance-set anti-starvation boost**: a ready thread that has not run
  for ``starvation_threshold`` seconds is boosted to priority 15 for a
  small CPU allowance.  This is why an idle-priority VM still creeps
  forward under full host load, as XP's balance-set manager does.
* **Shared-L2 contention**: co-runners on sibling cores slow each other
  down according to :class:`~repro.hardware.cache.SharedL2Model` — the
  source of the "two threads only reach 180%" effect (§4.2.3) and of the
  NBench MEM-index overhead (Figure 5).

Execution model: threads alternate *compute segments* (``submit`` cycles
with an instruction mix; returns a completion event) and blocked phases
(I/O, sync).  Between scheduling decisions every running thread retires
cycles at a constant rate, so charging elapsed time at each decision point
is exact, not approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SchedulerError
from repro.hardware.cpu import InstructionMix
from repro.hardware.machine import Machine
from repro.obs.metrics import METRICS
from repro.osmodel.threads import OsProcess, SimThread, ThreadState
from repro.simcore.engine import Engine
from repro.simcore.events import EventHandle, SimEvent

_CYCLE_EPSILON = 0.5       # segments within half a cycle count as finished
_TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class BoostPolicy:
    """Anti-starvation (balance-set manager) parameters."""

    enabled: bool = True
    scan_interval: float = 1.0         # how often the manager looks
    starvation_threshold: float = 3.0  # ready-but-unrun time that triggers
    boost_cpu: float = 0.04            # seconds of CPU granted at prio 15


@dataclass
class CoreState:
    """Per-core occupancy bookkeeping."""

    index: int
    thread: Optional[SimThread] = None
    speed: float = 0.0        # cycles/second for the current occupant
    busy_seconds: float = 0.0


class Scheduler:
    """The scheduler instance owning a machine's cores."""

    def __init__(self, engine: Engine, machine: Machine,
                 quantum: float = 0.020,
                 boost: Optional[BoostPolicy] = None):
        if quantum <= 0:
            raise SchedulerError(f"quantum must be positive, got {quantum}")
        self.engine = engine
        self.machine = machine
        self.quantum = quantum
        self.boost = boost if boost is not None else BoostPolicy()
        self.cores = [CoreState(i) for i in range(machine.n_cores)]
        self.threads: List[SimThread] = []
        self._rr_counter = 0
        self._last_update = engine.now
        self._tick_handle: Optional[EventHandle] = None
        self._in_decide = False
        self._dirty = False
        if self.boost.enabled:
            self.engine.schedule(self.boost.scan_interval, self._boost_scan,
                                 daemon=True)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def spawn(self, name: str, base_priority: int,
              process: Optional[OsProcess] = None,
              group: Optional[str] = None) -> SimThread:
        """Create a thread in the BLOCKED state (no demand yet)."""
        thread = SimThread(name, base_priority, process, group)
        thread.last_ran_at = self.engine.now
        self.threads.append(thread)
        if process is not None:
            process.add_thread(thread)
        return thread

    def submit(self, thread: SimThread, cycles: float,
               mix: InstructionMix) -> SimEvent:
        """Give ``thread`` a compute segment; returns its completion event.

        The thread must be BLOCKED (one outstanding segment at a time —
        callers sequence their demand through the completion event).
        """
        if thread.state is ThreadState.DONE:
            raise SchedulerError(f"thread {thread.name!r} has exited")
        if thread.state is not ThreadState.BLOCKED:
            raise SchedulerError(
                f"thread {thread.name!r} already has an outstanding segment"
            )
        if cycles < 0:
            raise SchedulerError(f"negative cycle demand: {cycles}")
        self._charge_elapsed()
        completion = self.engine.event()
        if cycles <= _CYCLE_EPSILON:
            completion.succeed(None)
            return completion
        thread.mix = mix
        thread.remaining_cycles = float(cycles)
        thread.completion = completion
        thread.state = ThreadState.READY
        thread.ready_since = self.engine.now
        thread.rr_seq = self._next_rr()
        thread.quantum_used = 0.0
        self._decide()
        return completion

    def exit_thread(self, thread: SimThread) -> None:
        """Terminate a thread permanently."""
        if thread.state is ThreadState.DONE:
            return
        self._charge_elapsed()
        if thread.state is ThreadState.RUNNING:
            self._evict(thread)
        thread.state = ThreadState.DONE
        thread.remaining_cycles = 0.0
        self._decide()

    # -- metrics -----------------------------------------------------------

    def cpu_time(self, thread: SimThread) -> float:
        """CPU seconds consumed, accurate as of *now*."""
        self._charge_elapsed()
        return thread.cpu_seconds

    def instructions(self, thread: SimThread) -> float:
        self._charge_elapsed()
        return thread.instructions_retired

    def core_utilization(self, elapsed: float) -> List[float]:
        self._charge_elapsed()
        if elapsed <= 0:
            return [0.0 for _ in self.cores]
        return [min(1.0, c.busy_seconds / elapsed) for c in self.cores]

    def running_threads(self) -> List[Optional[SimThread]]:
        return [c.thread for c in self.cores]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _next_rr(self) -> int:
        self._rr_counter += 1
        return self._rr_counter

    def _charge_elapsed(self) -> None:
        """Account CPU progress since the last decision point."""
        now = self.engine.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        self._last_update = now
        for core in self.cores:
            thread = core.thread
            if thread is None:
                continue
            cycles = min(core.speed * dt, thread.remaining_cycles)
            thread.remaining_cycles -= cycles
            thread.cycles_retired += cycles
            thread.instructions_retired += cycles / thread.mix.cpi
            thread.cpu_seconds += dt
            thread.quantum_used += dt
            thread.last_ran_at = now
            core.busy_seconds += dt
            if thread.boost_cpu_remaining > 0.0:
                thread.boost_cpu_remaining = max(
                    0.0, thread.boost_cpu_remaining - dt
                )
            factor = core.speed / self.machine.frequency_hz if core.speed else 1.0
            self.machine.l2.observe(factor, dt)

    def _evict(self, thread: SimThread) -> None:
        for core in self.cores:
            if core.thread is thread:
                core.thread = None
                core.speed = 0.0
                return
        raise SchedulerError(f"thread {thread.name!r} not on any core")

    def _decide(self) -> None:
        """(Re)compute placement and speeds; schedule the next tick."""
        if self._in_decide:
            self._dirty = True
            return
        self._in_decide = True
        try:
            while True:
                self._dirty = False
                self._decide_once()
                if not self._dirty:
                    break
        finally:
            self._in_decide = False

    def _decide_once(self) -> None:
        self._finish_completed_segments()
        if self._dirty:
            # completions released waiters that submitted new work; the
            # outer loop will re-run with fresh state.
            return
        self._place_threads()
        self._compute_speeds()
        self._schedule_tick()

    def _finish_completed_segments(self) -> None:
        for thread in self.threads:
            if thread.runnable and thread.remaining_cycles <= _CYCLE_EPSILON:
                if thread.state is ThreadState.RUNNING:
                    self._evict(thread)
                thread.state = ThreadState.BLOCKED
                thread.remaining_cycles = 0.0
                thread.segments_completed += 1
                if self.engine.trace.enabled:
                    self.engine.trace.record(
                        "sched.segment_done", time=self.engine.now,
                        thread=thread.name,
                        segments=thread.segments_completed,
                    )
                completion, thread.completion = thread.completion, None
                if completion is not None and not completion.triggered:
                    # may synchronously resume a process that submits again;
                    # re-entrancy is absorbed by the _dirty flag.
                    completion.succeed(None)

    def _place_threads(self) -> None:
        runnable = [t for t in self.threads if t.runnable]
        # Rotate out threads that burnt their quantum so same-priority
        # peers get the core (round robin).
        for thread in runnable:
            if thread.state is ThreadState.RUNNING and thread.quantum_used >= self.quantum - _TIME_EPSILON:
                thread.rr_seq = self._next_rr()
                thread.quantum_used = 0.0
        runnable.sort(key=SimThread.sort_key)
        chosen = runnable[: len(self.cores)]
        self._apply_group_preference(chosen, runnable[len(self.cores):])
        chosen_set = set(id(t) for t in chosen)

        # Demote currently-running threads that lost their slot.
        for core in self.cores:
            if core.thread is not None and id(core.thread) not in chosen_set:
                core.thread.state = ThreadState.READY
                core.thread.ready_since = self.engine.now
                core.thread = None
                core.speed = 0.0
                if METRICS.enabled:
                    METRICS.inc("sched.preemptions")

        # Keep already-placed winners on their cores; fill the rest.
        placed = set(id(c.thread) for c in self.cores if c.thread is not None)
        pending = [t for t in chosen if id(t) not in placed]
        for core in self.cores:
            if core.thread is None and pending:
                thread = pending.pop(0)
                core.thread = thread
                thread.state = ThreadState.RUNNING
                thread.core = core.index
                if METRICS.enabled:
                    # Simulated-time runqueue wait: READY -> placed.
                    METRICS.inc("sched.context_switches")
                    METRICS.observe("sched.runqueue_wait_s",
                                    self.engine.now - thread.ready_since)
                if self.engine.trace.enabled:
                    self.engine.trace.record(
                        "sched.place", time=self.engine.now,
                        core=core.index, thread=thread.name,
                        priority=thread.effective_priority,
                    )
        for t in self.threads:
            if t.state is ThreadState.READY:
                t.core = None

    @staticmethod
    def _apply_group_preference(chosen: List[SimThread],
                                rejected: List[SimThread]) -> None:
        """Prefer displacing a thread that shares an affinity group with a
        higher-priority chosen thread (VMM service work interrupts its own
        VM's vCPU, not foreign processes).

        Swaps equal-priority candidates only, so strict priority order is
        never violated.
        """
        if not rejected:
            return
        groups = [t.group for t in chosen if t.group is not None]
        for index, loser_candidate in enumerate(chosen):
            group = loser_candidate.group
            if group is None:
                continue
            # does a *different* chosen thread with higher priority share
            # this group?  (i.e. this VM already holds a core for service)
            dominated = any(
                other is not loser_candidate and other.group == group
                and other.effective_priority > loser_candidate.effective_priority
                for other in chosen
            )
            if not dominated:
                continue
            for substitute in rejected:
                if (substitute.effective_priority
                        == loser_candidate.effective_priority
                        and substitute.group != group):
                    chosen[index] = substitute
                    rejected.remove(substitute)
                    break
        del groups

    def _compute_speeds(self) -> None:
        per_core_mix = [
            core.thread.mix if core.thread is not None else None
            for core in self.cores
        ]
        factors = self.machine.l2.factors(per_core_mix)
        paging = self.machine.memory.paging_penalty_factor()
        freq = self.machine.frequency_hz
        for core in self.cores:
            if core.thread is None:
                core.speed = 0.0
            else:
                core.speed = freq * factors[core.index] * paging

    def _schedule_tick(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        next_dt: Optional[float] = None
        for core in self.cores:
            thread = core.thread
            if thread is None or core.speed <= 0:
                continue
            completion_dt = thread.remaining_cycles / core.speed
            quantum_dt = max(self.quantum - thread.quantum_used, _TIME_EPSILON)
            dt = min(completion_dt, quantum_dt)
            if thread.boost_cpu_remaining > 0.0:
                dt = min(dt, max(thread.boost_cpu_remaining, _TIME_EPSILON))
            if next_dt is None or dt < next_dt:
                next_dt = dt
        if next_dt is not None:
            next_dt = max(next_dt, _TIME_EPSILON)
            self._tick_handle = self.engine.schedule(next_dt, self._on_tick)

    def _on_tick(self) -> None:
        self._tick_handle = None
        self._charge_elapsed()
        self._decide()

    def _boost_scan(self) -> None:
        """Balance-set manager: boost long-starved ready threads."""
        self._charge_elapsed()
        now = self.engine.now
        boosted = False
        for thread in self.threads:
            if thread.state is not ThreadState.READY:
                continue
            starved_for = now - max(thread.last_ran_at, thread.ready_since)
            if starved_for >= self.boost.starvation_threshold and thread.boost_cpu_remaining <= 0.0:
                thread.boost_cpu_remaining = self.boost.boost_cpu
                thread.rr_seq = self._next_rr()
                boosted = True
                if METRICS.enabled:
                    METRICS.inc("sched.starvation_boosts")
                if self.engine.trace.enabled:
                    self.engine.trace.record(
                        "sched.boost", time=now, thread=thread.name,
                        starved_for=round(starved_for, 3),
                    )
        if boosted:
            self._decide()
        self.engine.schedule(self.boost.scan_interval, self._boost_scan,
                             daemon=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        running = [c.thread.name if c.thread else "-" for c in self.cores]
        return f"<Scheduler cores={running} threads={len(self.threads)}>"
