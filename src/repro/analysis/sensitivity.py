"""Parameter-sensitivity sweeps: how the mechanisms drive the figures.

Each sweep varies exactly one mechanistic parameter of the simulator and
measures a headline quantity, demonstrating that the reproduction's
results are *produced* by its mechanisms rather than pinned to the
paper's numbers:

* :func:`sweep_l2_coefficient` — shared-cache contention strength vs the
  dual-thread 7z ceiling (the paper's 180%);
* :func:`sweep_service_load` — VMM service demand vs host CPU
  availability (the Figure 7 lever);
* :func:`sweep_catchup_cost` — per-tick catch-up cycles vs VMware's
  host penalty (the Figure 7/8 vmplayer-vs-rest split);
* :func:`sweep_checkpoint_interval` — BOINC checkpoint cadence vs work
  lost to crashes in a churning grid (the fault-tolerance trade-off
  behind §1's checkpointing pitch).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from repro.errors import ExperimentError
from repro.hardware.specs import CpuSpec, MachineSpec, core2duo_e6600
from repro.virt.profiles import ServiceLoadSpec, get_profile


@dataclass
class SweepResult:
    """One parameter sweep: x values and named output series."""

    parameter: str
    values: List[float] = field(default_factory=list)
    outputs: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, value: float, **measurements: float) -> None:
        self.values.append(value)
        for key, measured in measurements.items():
            self.outputs.setdefault(key, []).append(float(measured))

    def series(self, key: str) -> List[float]:
        try:
            return self.outputs[key]
        except KeyError:
            raise ExperimentError(
                f"no output {key!r}; available: {sorted(self.outputs)}"
            ) from None

    def is_monotone(self, key: str, increasing: bool) -> bool:
        data = self.series(key)
        pairs = zip(data, data[1:])
        if increasing:
            return all(b >= a - 1e-9 for a, b in pairs)
        return all(b <= a + 1e-9 for a, b in pairs)

    def to_dict(self) -> Dict[str, Any]:
        """Stable round-trip encoding (per-point resume checkpoints)."""
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "outputs": {key: list(series)
                        for key, series in self.outputs.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        return cls(
            parameter=payload["parameter"],
            values=[float(v) for v in payload.get("values", [])],
            outputs={key: [float(v) for v in series]
                     for key, series in payload.get("outputs", {}).items()},
        )

    def render(self) -> str:
        header = f"sweep over {self.parameter}"
        lines = [header, "-" * len(header)]
        keys = sorted(self.outputs)
        lines.append("  ".join([f"{self.parameter:>16}"]
                               + [f"{k:>18}" for k in keys]))
        for index, value in enumerate(self.values):
            row = [f"{value:>16.4g}"]
            row += [f"{self.outputs[k][index]:>18.4g}" for k in keys]
            lines.append("  ".join(row))
        return "\n".join(lines)


def _machine_with_l2(coefficient: float) -> MachineSpec:
    base = core2duo_e6600()
    return dataclasses.replace(
        base, cpu=dataclasses.replace(base.cpu,
                                      l2_contention_coeff=coefficient)
    )


def sweep_l2_coefficient(values: Sequence[float] = (0.0, 0.2, 0.37, 0.6, 1.0),
                         duration_s: float = 8.0,
                         seed: int = 61) -> SweepResult:
    """Dual-thread 7z aggregate vs shared-L2 contention strength."""
    from repro.core.testbed import build_host_testbed
    from repro.workloads.sevenzip import SevenZipHostBenchmark

    sweep = SweepResult("l2_contention_coeff")
    for coefficient in values:
        testbed = build_host_testbed(seed, spec=_machine_with_l2(coefficient),
                                     with_peer=False, with_timeserver=False)
        bench = SevenZipHostBenchmark(testbed.kernel, threads=2,
                                      duration_s=duration_s,
                                      rng=testbed.rng.fork("7z"))
        result = testbed.run_to_completion(
            testbed.engine.process(bench.run(), "7z")
        )
        sweep.add(coefficient,
                  usage_pct=result.metric("usage_pct"),
                  mips=result.metric("mips"))
    return sweep


def _profile_with_service(base_name: str, frac: float):
    base = get_profile(base_name)
    return dataclasses.replace(
        base,
        service_loads=(ServiceLoadSpec("svc", frac),),
        tick_catchup=False, catchup_cycles_per_tick=0.0,
    )


def sweep_service_load(values: Sequence[float] = (0.0, 0.1, 0.2, 0.4, 0.6),
                       duration_s: float = 8.0, seed: int = 62
                       ) -> SweepResult:
    """Host dual-thread CPU availability vs VMM service demand."""
    sweep = SweepResult("service_frac")
    for frac in values:
        usage = _host_usage_with_profile(
            _profile_with_service("virtualbox", frac), duration_s, seed
        )
        sweep.add(frac, usage_pct=usage)
    return sweep


def sweep_catchup_cost(values: Sequence[float] = (0.0, 2e6, 4e6, 6.2e6, 9e6),
                       duration_s: float = 8.0, seed: int = 63
                       ) -> SweepResult:
    """Host CPU availability vs VMware's per-tick catch-up cost."""
    sweep = SweepResult("catchup_cycles_per_tick")
    base = get_profile("vmplayer")
    for cycles in values:
        profile = dataclasses.replace(
            base, tick_catchup=cycles > 0, catchup_cycles_per_tick=cycles
        )
        usage = _host_usage_with_profile(profile, duration_s, seed)
        sweep.add(cycles, usage_pct=usage)
    return sweep


def _host_usage_with_profile(profile, duration_s: float, seed: int) -> float:
    from repro.core.testbed import build_host_testbed
    from repro.virt.vm import VirtualMachine, VmConfig
    from repro.workloads.einstein import EinsteinTask, EinsteinWorkunit
    from repro.workloads.sevenzip import SevenZipHostBenchmark

    testbed = build_host_testbed(seed, with_peer=False,
                                 with_timeserver=False)
    vm = VirtualMachine(testbed.kernel, profile, VmConfig())

    def driver():
        yield from vm.boot()
        ctx = vm.guest_context()
        task = EinsteinTask(EinsteinWorkunit(n_templates=10 ** 9))
        yield from task.run_forever(ctx)

    testbed.engine.process(driver(), "einstein")
    bench = SevenZipHostBenchmark(testbed.kernel, threads=2,
                                  duration_s=duration_s,
                                  rng=testbed.rng.fork("7z"))
    result = testbed.run_to_completion(
        testbed.engine.process(bench.run(), "7z")
    )
    vm.shutdown()
    return result.metric("usage_pct")


def sweep_checkpoint_interval(values: Sequence[float] = (3.0, 10.0, 30.0, 100.0),
                              duration_s: float = 400.0,
                              seed: int = 64) -> SweepResult:
    """Grid work lost to crashes vs BOINC checkpoint cadence.

    Workunits are ~17 s of guest compute, so an interval beyond that
    degenerates to checkpoint-at-completion-only — the top of the loss
    curve.
    """
    from repro.grid import DesktopGrid, VolunteerConfig
    from repro.workloads.einstein import EinsteinWorkunit

    sweep = SweepResult("checkpoint_interval_s")
    for interval in values:
        grid = DesktopGrid(
            [VolunteerConfig(name=f"d{i}", mtbf_s=40.0, downtime_s=10.0,
                             checkpoint_interval_s=interval)
             for i in range(2)],
            [EinsteinWorkunit(workunit_id=f"wu-{i}", n_templates=100,
                              input_bytes=256 * 1024,
                              output_bytes=32 * 1024)
             for i in range(12)],
            seed=seed, reassign_timeout_s=10_000.0,
        )
        report = grid.run(duration_s)
        sweep.add(interval,
                  loss_fraction=report.loss_fraction,
                  templates_done=report.templates_done,
                  crashes=report.crashes)
    return sweep
