"""Sensitivity analysis: one-parameter sweeps over the simulator's
mechanisms, showing the figures are mechanism outputs, not constants."""

from repro.analysis.sensitivity import (
    SweepResult,
    sweep_catchup_cost,
    sweep_checkpoint_interval,
    sweep_l2_coefficient,
    sweep_service_load,
)

__all__ = [
    "SweepResult",
    "sweep_catchup_cost",
    "sweep_checkpoint_interval",
    "sweep_l2_coefficient",
    "sweep_service_load",
]
