"""Exception hierarchy for the repro package.

Every subsystem raises exceptions rooted at :class:`ReproError` so callers
can catch simulator faults without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (e.g. an event
    scheduled in the past, or a process resumed twice)."""


class SchedulerError(ReproError):
    """The OS scheduler model was driven into an invalid state."""


class FileSystemError(ReproError):
    """Filesystem-level failure (missing file, bad offset, disk full)."""


class NetworkError(ReproError):
    """Network-stack failure (closed socket, unreachable host)."""


class VirtualizationError(ReproError):
    """Hypervisor/VM lifecycle failure (bad config, double boot, ...)."""


class CheckpointError(VirtualizationError):
    """VM checkpoint save/restore failure."""


class WorkloadError(ReproError):
    """A benchmark workload was mis-configured or failed validation."""


class ExperimentError(ReproError):
    """The experiment harness was mis-configured."""


class CalibrationError(ReproError):
    """Calibration targets/parameters are inconsistent."""
