#!/usr/bin/env python3
"""Guest clocks lie under load — and how the paper worked around it.

Demonstrates the §4 methodology note: "to circumvent the timing
imprecision that occur on virtual machines, especially when the machines
are under high load, time measurements ... were done resorting to an
external time reference ... a simple UDP time server running on the host
machine."

We run a fixed compute task inside each guest while the host is fully
loaded, and time it three ways: by the guest's own clock, by the UDP
time server, and by the simulator's oracle.

Run:  python examples/guest_clock_trouble.py
"""

from repro.core.testbed import boot_vm, build_host_testbed, guest_time_client
from repro.hardware.cpu import MIX_MATRIX, MIX_SEVENZIP
from repro.osmodel.threads import PRIORITY_NORMAL
from repro.virt.vm import VmConfig

TASK_INSTRUCTIONS = 3e9


def measure(hypervisor: str, loaded: bool):
    testbed = build_host_testbed(seed=5)
    engine = testbed.engine
    if loaded:
        for index in range(2):  # saturate both host cores
            thread = testbed.kernel.spawn_thread(f"load{index}",
                                                 PRIORITY_NORMAL)
            ctx = testbed.kernel.context(thread)

            def grind(ctx=ctx):
                while True:
                    yield from ctx.compute(1e8, MIX_SEVENZIP)

            engine.process(grind(), f"load{index}")

    def driver():
        vm = yield from boot_vm(testbed, hypervisor, VmConfig())
        clock = guest_time_client(testbed, vm)
        ctx = vm.guest_context(timestamp_source=clock.query)

        guest_t0 = ctx.time()          # guest clock
        udp_t0 = yield from ctx.timestamp()   # UDP time server
        true_t0 = engine.now           # oracle

        yield from ctx.compute(TASK_INSTRUCTIONS, MIX_MATRIX)

        guest_elapsed = ctx.time() - guest_t0
        udp_elapsed = (yield from ctx.timestamp()) - udp_t0
        true_elapsed = engine.now - true_t0
        vm.shutdown()
        return guest_elapsed, udp_elapsed, true_elapsed

    return testbed.run_to_completion(engine.process(driver(), "measure"))


def main() -> None:
    print(f"{'environment':<24}{'guest clock':>13}{'UDP server':>12}"
          f"{'truth':>9}{'guest error':>13}")
    for hypervisor in ("vmplayer", "qemu", "virtualbox"):
        for loaded in (False, True):
            guest, udp, true = measure(hypervisor, loaded)
            label = f"{hypervisor}{' (host loaded)' if loaded else ''}"
            error = (guest - true) / true * 100
            print(f"{label:<24}{guest:>12.2f}s{udp:>11.2f}s"
                  f"{true:>8.2f}s{error:>+12.1f}%")
    print()
    print("Drop-policy VMMs (QEMU, VirtualBox) under-count time when the "
          "vCPU is starved; the UDP timestamps stay honest — which is why "
          "every guest measurement in this reproduction (and the paper) "
          "uses them.  VMware's tick catch-up keeps its clock honest at "
          "the price of Figure 7's host-CPU penalty.")


if __name__ == "__main__":
    main()
