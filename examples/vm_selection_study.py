#!/usr/bin/env python3
"""VM selection study: which hypervisor for which desktop-grid workload?

The paper's practical upshot is that the answer depends on the workload
class: CPU-bound tasks virtualise cheaply everywhere (except QEMU), while
I/O-bound tasks "should not be considered on such environments".  This
example sweeps all four hypervisors across the four benchmark classes and
prints a decision matrix.

Run:  python examples/vm_selection_study.py        (takes a few minutes)
      REPRO_FAST=1 python examples/vm_selection_study.py
"""

from repro.core.guest_perf import (
    normalize_against_native,
    run_benchmark_in_environment,
)
from repro.core.stats import summarize
from repro.core.testbed import ENV_NATIVE
from repro.units import MB
from repro.virt.profiles import PROFILE_ORDER
from repro.workloads.iobench import IoBench, IoBenchConfig
from repro.workloads.matrix import MatrixBenchmark, MatrixConfig
from repro.workloads.netbench import IperfServer, NetBench, NetBenchConfig
from repro.workloads.sevenzip import SevenZipBenchmark, SevenZipConfig

_TRANSFER = 4 * MB

WORKLOADS = {
    "integer CPU (7z)": (
        lambda tb: SevenZipBenchmark(SevenZipConfig(n_blocks=6),
                                     rng=tb.rng.fork("7z")),
        "mips", False,
    ),
    "floating point (Matrix)": (
        lambda tb: MatrixBenchmark(MatrixConfig(size=512)),
        "seconds_per_multiply", True,
    ),
    "disk I/O (IOBench)": (
        lambda tb: IoBench(IoBenchConfig(max_bytes=8 * MB)),
        "aggregate_mbps", False,
    ),
    "network (NetBench)": (
        lambda tb: (IperfServer(tb.peer_kernel, expected_bytes=_TRANSFER)
                    and None)
        or NetBench(tb.peer_kernel, NetBenchConfig(transfer_bytes=_TRANSFER)),
        "mbps", False,
    ),
}

ENVIRONMENTS = (ENV_NATIVE,) + PROFILE_ORDER


def verdict(slowdown: float) -> str:
    if slowdown < 1.25:
        return "good"
    if slowdown < 2.0:
        return "usable"
    return "avoid"


def main() -> None:
    matrix = {}
    for workload_name, (factory, metric, invert) in WORKLOADS.items():
        results = {}
        for env in ENVIRONMENTS:
            run = run_benchmark_in_environment(env, factory, seed=7)
            results[env] = summarize([float(run.metric(metric))])
        matrix[workload_name] = normalize_against_native(results,
                                                         invert=invert)

    width = max(len(name) for name in WORKLOADS) + 2
    header = f"{'workload':<{width}}" + "".join(
        f"{env:>16}" for env in PROFILE_ORDER
    )
    print(header)
    print("-" * len(header))
    for workload_name, slowdowns in matrix.items():
        cells = "".join(
            f"{slowdowns[env]:>8.2f}x {verdict(slowdowns[env]):<6}"
            for env in PROFILE_ORDER
        )
        print(f"{workload_name:<{width}}{cells}")

    print()
    print("Conclusions (matching the paper's):")
    cpu = matrix["floating point (Matrix)"]
    io = matrix["disk I/O (IOBench)"]
    best_cpu = min(PROFILE_ORDER, key=lambda e: cpu[e])
    print(f"  * best for CPU-bound volunteer tasks: {best_cpu} "
          f"({cpu[best_cpu]:.2f}x)")
    print(f"  * disk-I/O-bound tasks degrade {min(io[e] for e in PROFILE_ORDER):.1f}x-"
          f"{max(io[e] for e in PROFILE_ORDER):.1f}x: "
          "'should not be considered on such environments'")


if __name__ == "__main__":
    main()
