#!/usr/bin/env python3
"""A whole VM-based desktop grid: churn, checkpoints, mixed hypervisors.

Scales the paper's single-machine findings up to the scenario its
introduction motivates: a campus lab of volunteer desktops, each running
the Einstein@home client inside a sandboxed VM, with machines crashing
and rebooting, owners using their machines, and the project server
reassigning work that goes quiet.

Printed per volunteer: work delivered, crashes survived, templates lost
to un-checkpointed progress — plus the fleet-level efficiency compared
with what the same machines would deliver running natively.

Run:  python examples/desktop_grid_fleet.py     (about a minute of wall time)
"""

from repro.fleet import estimated_grid_efficiency
from repro.grid import DesktopGrid, VolunteerConfig
from repro.workloads.einstein import EinsteinWorkunit

SIM_SECONDS = 900.0

FLEET = [
    # a mixed lab: different hypervisors, different reliability, one
    # machine whose owner actually uses it
    VolunteerConfig(name="lab-pc-01", hypervisor="vmplayer",
                    mtbf_s=400.0, downtime_s=45.0),
    VolunteerConfig(name="lab-pc-02", hypervisor="vmplayer",
                    mtbf_s=400.0, downtime_s=45.0),
    VolunteerConfig(name="lab-pc-03", hypervisor="virtualbox",
                    mtbf_s=250.0, downtime_s=60.0),
    VolunteerConfig(name="lab-pc-04", hypervisor="virtualpc",
                    mtbf_s=250.0, downtime_s=60.0),
    VolunteerConfig(name="office-pc", hypervisor="vmplayer",
                    mtbf_s=600.0, downtime_s=30.0,
                    owner_duty_cycle=0.4, owner_session_s=120.0),
    VolunteerConfig(name="flaky-pc", hypervisor="qemu",
                    mtbf_s=90.0, downtime_s=90.0,
                    checkpoint_interval_s=30.0),
]

WORKUNITS = [
    EinsteinWorkunit(workunit_id=f"wu-{i:03d}", n_templates=60,
                     input_bytes=1024 * 1024, output_bytes=64 * 1024)
    for i in range(120)
]


def main() -> None:
    grid = DesktopGrid(FLEET, WORKUNITS, seed=777,
                       reassign_timeout_s=300.0)
    report = grid.run(SIM_SECONDS)

    print(report.summary())
    print()

    total_templates = report.templates_done
    # what the same wall time of *native* CPU would have yielded
    print("volunteering efficiency by hypervisor (CPU-bound FP science "
          "per donated cycle):")
    for hypervisor in ("vmplayer", "virtualbox", "virtualpc", "qemu"):
        eff = estimated_grid_efficiency(hypervisor)
        print(f"  {hypervisor:<11} {eff * 100:5.1f}%  "
              f"(paper Fig 2: guest FP runs at 1/{1 / eff:.2f} of native)")
    print()
    print(f"The fleet delivered {total_templates} templates in "
          f"{SIM_SECONDS:.0f} s with {report.crashes} crashes; "
          f"checkpointing held losses to "
          f"{report.loss_fraction * 100:.1f}% — the sandboxing + "
          f"fault-tolerance story of the paper's introduction.")


if __name__ == "__main__":
    main()
