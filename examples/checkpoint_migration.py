#!/usr/bin/env python3
"""Checkpoint & migrate a volunteer VM between physical hosts.

Exercises the feature §1 of the paper highlights: "the possibility of
saving the state of the guest OS to persistent storage ... allows
simultaneously for fault tolerance and migration, making possible the
exportation of a virtual environment to another physical machine".

A VM computes part of an Einstein workunit on host A, is checkpointed
mid-flight, shipped over the 100 Mbps LAN to host B, and resumes exactly
where it left off (BOINC apps carry their own progress in the checkpoint).

Run:  python examples/checkpoint_migration.py
"""

from repro.hardware.machine import Machine
from repro.hardware.specs import core2duo_e6600
from repro.core.testbed import boot_vm, build_host_testbed
from repro.osmodel.kernel import Kernel, windows_xp_params
from repro.osmodel.threads import PRIORITY_NORMAL
from repro.units import MB
from repro.virt.checkpoint import (
    restore_checkpoint,
    save_checkpoint,
    transfer_checkpoint,
)
from repro.virt.vm import VmConfig
from repro.workloads.einstein import (
    EinsteinProgress,
    EinsteinTask,
    EinsteinWorkunit,
)

WORKUNIT = EinsteinWorkunit(workunit_id="wu-migrate", n_templates=60)
SWITCH_AFTER = 25  # migrate once this many templates are done


def main() -> None:
    # host A (no LAN peer — the 100 Mbps link goes straight to host B)
    testbed = build_host_testbed(seed=99, with_peer=False)
    engine = testbed.engine
    machine_b = Machine(engine, core2duo_e6600("host-b"),
                        testbed.rng.fork("host-b"))
    testbed.machine.nic.connect(machine_b.nic)
    host_b = Kernel(engine, machine_b, windows_xp_params(), name="host-b")

    def scenario():
        # --- phase 1: compute on host A --------------------------------
        vm_a = yield from boot_vm(testbed, "vmplayer",
                                  VmConfig(memory_bytes=128 * MB))
        ctx = vm_a.guest_context()
        task = EinsteinTask(WORKUNIT, checkpoint_interval_s=30.0)
        while task.progress.next_template < SWITCH_AFTER:
            yield from ctx.compute(WORKUNIT.instr_per_template,
                                   __import__("repro.hardware.cpu",
                                              fromlist=["MIX_EINSTEIN"]
                                              ).MIX_EINSTEIN)
            task.progress.next_template += 1
        phase1_done = task.progress.next_template
        t_checkpoint = engine.now

        # --- phase 2: checkpoint + ship + restore ------------------------
        image = yield from save_checkpoint(
            vm_a, workload_state=task.progress.as_dict()
        )
        vm_a.shutdown()
        mover = testbed.kernel.spawn_thread("mover", PRIORITY_NORMAL)
        transfer_s = yield from transfer_checkpoint(
            image, testbed.kernel, host_b, mover
        )
        vm_b = yield from restore_checkpoint(host_b, image)

        # --- phase 3: resume on host B -----------------------------------
        resumed = EinsteinTask(
            WORKUNIT,
            progress=EinsteinProgress.from_dict(image.workload_state),
            checkpoint_path="/boinc/resumed.ckpt",
        )
        result = yield from resumed.run(vm_b.guest_context())
        vm_b.shutdown()
        return phase1_done, image, transfer_s, t_checkpoint, result

    phase1_done, image, transfer_s, t_checkpoint, result = (
        testbed.run_to_completion(engine.process(scenario(), "migration"))
    )

    print(f"templates computed on host A      : {phase1_done}")
    print(f"checkpoint image                  : {image.size_bytes / MB:.0f} MB "
          f"written at t={t_checkpoint:.1f}s")
    print(f"LAN transfer to host B            : {transfer_s:.1f} s "
          f"({image.size_bytes * 8 / 1e6 / transfer_s:.1f} Mbps effective)")
    print(f"templates computed on host B      : "
          f"{WORKUNIT.n_templates - phase1_done} "
          f"(resumed from template {phase1_done})")
    print(f"workunit complete                 : "
          f"{result.metric('templates')} of {WORKUNIT.n_templates}")
    print(f"total wall time                   : {engine.now:.1f} s simulated")
    print()
    print("No template was recomputed: BOINC-style workload checkpoints "
          "travel inside the VM image's metadata.")


if __name__ == "__main__":
    main()
