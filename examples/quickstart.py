#!/usr/bin/env python3
"""Quickstart: boot a VM, benchmark the guest, compare with native.

Builds the paper's testbed (Core 2 Duo, Windows XP host), boots a Linux
guest under VMware Player, runs the 7z CPU benchmark inside it — timed
against the host's UDP time server, as the paper does — and prints the
slowdown against bare-metal Linux.

Run:  python examples/quickstart.py
"""

from repro.core.testbed import (
    boot_vm,
    build_host_testbed,
    build_native_testbed,
    guest_time_client,
)
from repro.osmodel.threads import PRIORITY_NORMAL
from repro.simcore.rng import RngStreams
from repro.virt.vm import VmConfig
from repro.workloads.sevenzip import SevenZipBenchmark, SevenZipConfig


def run_native(seed: int = 1) -> float:
    """7z MIPS on bare-metal Ubuntu."""
    testbed = build_native_testbed(seed, with_peer=False)
    thread = testbed.kernel.spawn_thread("bench", PRIORITY_NORMAL)
    ctx = testbed.kernel.context(thread)
    bench = SevenZipBenchmark(SevenZipConfig(n_blocks=8), rng=RngStreams(seed))
    result = testbed.run_to_completion(
        testbed.engine.process(bench.run(ctx), "7z-native")
    )
    return result.metric("mips")


def run_in_guest(hypervisor: str, seed: int = 1) -> float:
    """7z MIPS inside a guest under the named hypervisor."""
    testbed = build_host_testbed(seed, with_peer=False)

    def driver():
        vm = yield from boot_vm(testbed, hypervisor,
                                VmConfig(priority=PRIORITY_NORMAL))
        clock = guest_time_client(testbed, vm)
        ctx = vm.guest_context(timestamp_source=clock.query)
        bench = SevenZipBenchmark(SevenZipConfig(n_blocks=8),
                                  rng=RngStreams(seed))
        result = yield from bench.run(ctx)
        vm.shutdown()
        return result

    result = testbed.run_to_completion(
        testbed.engine.process(driver(), "7z-guest")
    )
    return result.metric("mips")


def main() -> None:
    native_mips = run_native()
    print(f"native Ubuntu        : {native_mips:7.0f} MIPS")
    for hypervisor in ("vmplayer", "virtualbox", "virtualpc", "qemu"):
        guest_mips = run_in_guest(hypervisor)
        slowdown = native_mips / guest_mips
        print(f"guest on {hypervisor:<11}: {guest_mips:7.0f} MIPS  "
              f"({slowdown:.2f}x slower)")
    print()
    print("Paper (Figure 1): vmplayer 1.15x, virtualbox 1.20x, "
          "virtualpc 1.36x, qemu >2x")


if __name__ == "__main__":
    main()
