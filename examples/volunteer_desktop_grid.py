#!/usr/bin/env python3
"""Full desktop-grid scenario: volunteering through a VM, intrusively?

Recreates the paper's motivating situation end to end:

* a project server (Einstein@home-like) on the LAN hands out workunits;
* the volunteer's Windows machine boots an idle-priority Linux VM whose
  BOINC client fetches, computes (with checkpointing) and reports;
* meanwhile the machine's *owner* keeps using it — first lightly (one
  7z thread), then heavily (two threads).

Printed: how much work the grid got, what it cost the owner, and what the
VM did to the guest's clock — the paper's three intrusiveness axes.

Run:  python examples/volunteer_desktop_grid.py
"""

from repro.core.testbed import boot_vm, build_host_testbed
from repro.units import MB
from repro.virt.vm import VmConfig
from repro.workloads.boinc import BoincClient, BoincServer
from repro.workloads.einstein import EinsteinWorkunit
from repro.workloads.sevenzip import SevenZipHostBenchmark

PHASE_SECONDS = 15.0


def main() -> None:
    testbed = build_host_testbed(seed=2024)
    engine = testbed.engine

    # --- the project -----------------------------------------------------
    server = BoincServer(testbed.peer_kernel, project="einstein@home")
    server.add_workunits([
        EinsteinWorkunit(workunit_id=f"wu-{i}", n_templates=40,
                         input_bytes=1 * MB, output_bytes=128 * 1024)
        for i in range(50)
    ])

    # --- the volunteer VM --------------------------------------------------
    state = {}

    def volunteer():
        vm = yield from boot_vm(testbed, "vmplayer",
                                VmConfig(net_mode="bridged"))
        state["vm"] = vm
        ctx = vm.guest_context()
        client = BoincClient(server, client_id="desktop-42",
                             checkpoint_interval_s=60.0)
        state["client"] = client
        yield from client.run(ctx)

    engine.process(volunteer(), "volunteer")

    # --- the owner's day ----------------------------------------------------
    print(f"{'phase':<28}{'owner CPU%':>12}{'owner MIPS':>12}"
          f"{'grid templates':>16}")
    totals_before = 0
    for phase, threads in (("light use (1 thread)", 1),
                           ("heavy use (2 threads)", 2)):
        bench = SevenZipHostBenchmark(
            testbed.kernel, threads=threads, duration_s=PHASE_SECONDS,
            rng=testbed.rng.fork(f"owner-{threads}"),
        )
        result = testbed.run_to_completion(
            engine.process(bench.run(), f"owner-{threads}")
        )
        client = state["client"]
        done_now = client.templates_done - totals_before
        totals_before = client.templates_done
        print(f"{phase:<28}{result.metric('usage_pct'):>11.1f}%"
              f"{result.metric('mips'):>12.0f}{done_now:>16}")

    vm = state["vm"]
    clock_error = vm.guest_clock.error_seconds(engine.now)
    committed = testbed.machine.memory.committed_bytes / MB

    print()
    print(f"workunits completed for the grid : {state['client'].workunits_done}")
    print(f"host memory committed by the VM  : {committed:.0f} MB "
          f"(constant while running — §4.2.1)")
    print(f"guest clock drift (VMware catch-up keeps it honest): "
          f"{clock_error:.3f} s")
    print()
    print("Paper's verdict: a dual-core machine 'can withstand, with "
          "marginal impact ... the presence of a virtual machine as long "
          "as only single threaded applications are run in the host OS'.")
    vm.shutdown()


if __name__ == "__main__":
    main()
